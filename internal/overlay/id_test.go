package overlay

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestKeyIDDeterministic(t *testing.T) {
	a := KeyID([]byte("hello"))
	b := KeyID([]byte("hello"))
	c := KeyID([]byte("world"))
	if a != b {
		t.Fatal("KeyID not deterministic")
	}
	if a == c {
		t.Fatal("distinct keys collided (astronomically unlikely)")
	}
}

func TestRandomIDUniqueness(t *testing.T) {
	g := sim.NewRNG(1)
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := RandomID(g)
		if seen[id] {
			t.Fatal("duplicate random 160-bit id within 1000 draws")
		}
		seen[id] = true
	}
}

func TestBit(t *testing.T) {
	var id ID
	id[0] = 0x80 // bit 0 set
	id[1] = 0x01 // bit 15 set
	if id.Bit(0) != 1 || id.Bit(1) != 0 || id.Bit(15) != 1 {
		t.Fatalf("Bit extraction wrong: %d %d %d", id.Bit(0), id.Bit(1), id.Bit(15))
	}
	if id.Bit(-1) != 0 || id.Bit(IDBits) != 0 {
		t.Fatal("out-of-range Bit should be 0")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	var a, b ID
	if got := CommonPrefixLen(a, b); got != IDBits {
		t.Fatalf("equal ids CPL = %d, want %d", got, IDBits)
	}
	b[0] = 0x80
	if got := CommonPrefixLen(a, b); got != 0 {
		t.Fatalf("CPL = %d, want 0", got)
	}
	b[0] = 0x01
	if got := CommonPrefixLen(a, b); got != 7 {
		t.Fatalf("CPL = %d, want 7", got)
	}
	b[0] = 0
	b[5] = 0x10
	if got := CommonPrefixLen(a, b); got != 43 {
		t.Fatalf("CPL = %d, want 43", got)
	}
}

func TestCmp(t *testing.T) {
	var a, b ID
	if a.Cmp(b) != 0 {
		t.Fatal("equal ids must compare 0")
	}
	b[19] = 1
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 {
		t.Fatal("Cmp ordering wrong")
	}
}

func TestCloserXOR(t *testing.T) {
	target := KeyID([]byte("t"))
	a := target
	a[19] ^= 0x01 // distance 1
	b := target
	b[0] ^= 0x80 // enormous distance
	if !CloserXOR(target, a, b) {
		t.Fatal("a (distance 1) should be closer than b")
	}
	if CloserXOR(target, b, a) {
		t.Fatal("b should not be closer than a")
	}
	if CloserXOR(target, a, a) {
		t.Fatal("CloserXOR must be strict")
	}
}

func TestRingBetween(t *testing.T) {
	tests := []struct {
		a, x, b uint64
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false}, // interval is open at a
		{10, 20, 20, true},  // closed at b
		{10, 25, 20, false},
		{20, 5, 10, true},   // wrap-around
		{20, 15, 10, false}, // wrap-around, x before a
		{7, 7, 7, false},    // degenerate single node: a itself excluded
		{7, 8, 7, true},     // degenerate: everything else included
	}
	for _, tt := range tests {
		if got := RingBetween(tt.a, tt.x, tt.b); got != tt.want {
			t.Errorf("RingBetween(%d,%d,%d) = %v, want %v", tt.a, tt.x, tt.b, got, tt.want)
		}
	}
}

// Property: XOR metric axioms — identity, symmetry, and the triangle
// equality d(a,c) <= d(a,b) XOR d(b,c) doesn't hold in general for XOR, but
// d(a,b)=0 iff a==b and d is symmetric.
func TestPropertyXORMetric(t *testing.T) {
	f := func(ab, bb [IDBytes]byte) bool {
		a, b := ID(ab), ID(bb)
		dAB, dBA := a.XOR(b), b.XOR(a)
		if dAB != dBA {
			return false
		}
		zero := dAB.Cmp(ID{}) == 0
		return zero == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: unidirectionality of XOR — for a fixed target and distinct a, b,
// exactly one of the two is strictly closer.
func TestPropertyXORTotalOrder(t *testing.T) {
	f := func(tb, ab, bb [IDBytes]byte) bool {
		target, a, b := ID(tb), ID(ab), ID(bb)
		if a == b {
			return !CloserXOR(target, a, b) && !CloserXOR(target, b, a)
		}
		return CloserXOR(target, a, b) != CloserXOR(target, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CPL(a,b) >= k implies the top k bits agree.
func TestPropertyCPL(t *testing.T) {
	f := func(ab, bb [IDBytes]byte) bool {
		a, b := ID(ab), ID(bb)
		cpl := CommonPrefixLen(a, b)
		for i := 0; i < cpl; i++ {
			if a.Bit(i) != b.Bit(i) {
				return false
			}
		}
		if cpl < IDBits && a.Bit(cpl) == b.Bit(cpl) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRing64(t *testing.T) {
	var id ID
	id[0] = 0x01
	if got := id.Ring64(); got != 1<<56 {
		t.Fatalf("Ring64 = %d, want %d", got, uint64(1)<<56)
	}
}

func TestStringForms(t *testing.T) {
	id := KeyID([]byte("x"))
	if len(id.String()) != 8 {
		t.Fatalf("short form length = %d, want 8 hex chars", len(id.String()))
	}
	if len(id.Hex()) != 40 {
		t.Fatalf("hex form length = %d, want 40", len(id.Hex()))
	}
}
