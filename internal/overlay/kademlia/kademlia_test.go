package kademlia

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netmodel"
	"repro/internal/overlay"
	"repro/internal/sim"
)

func newDeployment(t *testing.T, n int, cfg Config, seed int64) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw := NewNetwork(s, nm, cfg)
	for i := 0; i < n; i++ {
		nw.AddNode(netmodel.Europe)
	}
	if err := nw.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	return s, nw
}

func TestTableAddAndEvict(t *testing.T) {
	g := sim.NewRNG(1)
	self := overlay.RandomID(g)
	tab := NewTable(self, 4)
	if tab.Add(Contact{ID: self}) {
		t.Fatal("table must not store its owner")
	}
	// Fill one specific bucket with ids sharing CPL 0 with self.
	mk := func(i byte) Contact {
		var id overlay.ID
		id[0] = ^self[0] // guarantees CPL 0
		id[19] = i
		return Contact{ID: id, Addr: netmodel.NodeID(i)}
	}
	for i := byte(0); i < 4; i++ {
		if !tab.Add(mk(i)) {
			t.Fatalf("Add #%d failed with room available", i)
		}
	}
	if tab.Add(mk(9)) {
		t.Fatal("full bucket must drop newcomers")
	}
	if !tab.Add(mk(2)) {
		t.Fatal("refreshing an existing contact must succeed")
	}
	if tab.Size() != 4 {
		t.Fatalf("Size = %d, want 4", tab.Size())
	}
}

func TestTableRemove(t *testing.T) {
	g := sim.NewRNG(2)
	self := overlay.RandomID(g)
	tab := NewTable(self, 8)
	c := Contact{ID: overlay.RandomID(g)}
	tab.Add(c)
	if !tab.Contains(c.ID) {
		t.Fatal("contact missing after Add")
	}
	tab.Remove(c.ID)
	if tab.Contains(c.ID) {
		t.Fatal("contact present after Remove")
	}
	tab.Remove(c.ID) // removing absent contact is a no-op
}

func TestTableClosestOrdering(t *testing.T) {
	g := sim.NewRNG(3)
	self := overlay.RandomID(g)
	tab := NewTable(self, 20)
	for i := 0; i < 50; i++ {
		tab.Add(Contact{ID: overlay.RandomID(g), Addr: netmodel.NodeID(i)})
	}
	target := overlay.RandomID(g)
	got := tab.Closest(target, 10)
	if len(got) != 10 {
		t.Fatalf("Closest returned %d, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if overlay.CloserXOR(target, got[i].ID, got[i-1].ID) {
			t.Fatal("Closest not sorted by XOR distance")
		}
	}
	if tab.Closest(target, 0) != nil {
		t.Fatal("Closest(0) should be nil")
	}
}

// Property: a bucket never exceeds k and never stores the owner.
func TestPropertyTableInvariants(t *testing.T) {
	g := sim.NewRNG(4)
	self := overlay.RandomID(g)
	f := func(ids [][overlay.IDBytes]byte) bool {
		tab := NewTable(self, 4)
		for _, raw := range ids {
			tab.Add(Contact{ID: overlay.ID(raw)})
		}
		for cpl := 0; cpl <= overlay.IDBits; cpl++ {
			if tab.BucketLen(cpl) > 4 {
				return false
			}
		}
		return !tab.Contains(self)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupFindsGlobalClosest(t *testing.T) {
	s, nw := newDeployment(t, 300, Config{K: 8, Alpha: 3, UnresponsiveFrac: 0}, 42)
	misses := 0
	const lookups = 30
	for i := 0; i < lookups; i++ {
		target := overlay.RandomID(s.Stream("targets"))
		origin := nw.Nodes()[s.Stream("origins").Intn(300)]
		nw.Lookup(origin, target, func(r Result) {
			if !r.Converged {
				misses++
				return
			}
			truth := nw.ClosestOnline(target, 1)[0]
			found := false
			for _, c := range r.Closest {
				if c.ID == truth.ID {
					found = true
					break
				}
			}
			if !found {
				misses++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if misses > 1 {
		t.Fatalf("%d/%d lookups missed the globally closest node", misses, lookups)
	}
}

func TestLookupLatencyReasonable(t *testing.T) {
	s, nw := newDeployment(t, 500, Config{K: 8, Alpha: 3, RPCTimeout: 2 * time.Second, UnresponsiveFrac: 0}, 7)
	var lat []time.Duration
	for i := 0; i < 20; i++ {
		origin := nw.Nodes()[i]
		nw.Lookup(origin, overlay.RandomID(s.Stream("t")), func(r Result) {
			lat = append(lat, r.Latency)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(lat) != 20 {
		t.Fatalf("only %d lookups completed", len(lat))
	}
	for _, d := range lat {
		// All-responsive EU-only network: a few round trips, never minutes.
		if d > 3*time.Second {
			t.Fatalf("lookup latency %v unreasonably high without timeouts", d)
		}
	}
}

func TestUnresponsiveNodesCauseTimeouts(t *testing.T) {
	sResp, nwResp := newDeployment(t, 300, Config{K: 8, Alpha: 3, RPCTimeout: time.Second, UnresponsiveFrac: 0}, 9)
	sDead, nwDead := newDeployment(t, 300, Config{K: 8, Alpha: 3, RPCTimeout: time.Second, UnresponsiveFrac: 0.5}, 9)

	run := func(s *sim.Sim, nw *Network) (totalLatency time.Duration) {
		for i := 0; i < 20; i++ {
			nw.Lookup(nw.Nodes()[i], overlay.RandomID(s.Stream("t")), func(r Result) {
				totalLatency += r.Latency
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return totalLatency
	}
	respLat := run(sResp, nwResp)
	deadLat := run(sDead, nwDead)
	if deadLat < 2*respLat {
		t.Fatalf("unresponsive population should slow lookups: responsive=%v dead=%v", respLat, deadLat)
	}
	if nwDead.Timeouts() == 0 {
		t.Fatal("expected timeouts with 50% unresponsive nodes")
	}
}

func TestLookupFromOfflineOrigin(t *testing.T) {
	s, nw := newDeployment(t, 50, Config{UnresponsiveFrac: 0}, 3)
	n := nw.Nodes()[0]
	nw.SetOnline(n, false)
	var got *Result
	nw.Lookup(n, overlay.RandomID(s.Stream("t")), func(r Result) { got = &r })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil {
		t.Fatal("done callback never fired")
	}
	if got.Converged || len(got.Closest) != 0 {
		t.Fatal("offline origin should yield empty non-converged result")
	}
}

func TestRejoinRepopulatesTable(t *testing.T) {
	s, nw := newDeployment(t, 200, Config{K: 8, UnresponsiveFrac: 0}, 5)
	n := nw.Nodes()[0]
	nw.SetOnline(n, false)
	rejoined := false
	s.After(time.Minute, func() {
		nw.Rejoin(n, func() { rejoined = true })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rejoined {
		t.Fatal("Rejoin callback never fired")
	}
	if !n.Online() {
		t.Fatal("node offline after Rejoin")
	}
	if n.Table().Size() < 5 {
		t.Fatalf("rejoined table has only %d contacts", n.Table().Size())
	}
}

func TestSenderLearning(t *testing.T) {
	s, nw := newDeployment(t, 100, Config{K: 8, UnresponsiveFrac: 0}, 12)
	origin := nw.Nodes()[0]
	// After a lookup, some queried nodes should have learned the origin.
	nw.Lookup(origin, overlay.RandomID(s.Stream("t")), nil)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	learned := 0
	for _, n := range nw.Nodes()[1:] {
		if n.Table().Contains(origin.ID) {
			learned++
		}
	}
	if learned == 0 {
		t.Fatal("no node learned the requester — sybil poisoning vector missing")
	}
}

func TestMaliciousPoisonedResponses(t *testing.T) {
	s, nw := newDeployment(t, 100, Config{K: 8, Alpha: 3, UnresponsiveFrac: 0}, 21)
	target := overlay.RandomID(s.Stream("atk"))
	// Attacker mints ids adjacent to the target and cross-references them.
	var atkContacts []Contact
	for i := 0; i < 8; i++ {
		id := target
		id[19] ^= byte(i + 1)
		mal := nw.AddMaliciousNode(netmodel.Europe, id, func(overlay.ID) []Contact { return atkContacts })
		atkContacts = append(atkContacts, Contact{ID: mal.ID, Addr: mal.Addr})
	}
	// Announcement phase: each attacker looks up the target, so honest
	// nodes near the target learn the attacker via sender learning (their
	// high-CPL buckets are sparse and accept the entries).
	for _, a := range atkContacts {
		mal := nw.byAddr[a.Addr]
		honest := nw.Nodes()[s.Stream("seed").Intn(100)]
		mal.Table().Add(Contact{ID: honest.ID, Addr: honest.Addr})
		nw.Lookup(mal, target, nil)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run (announce): %v", err)
	}
	origin := nw.Nodes()[0]
	var res Result
	nw.Lookup(origin, target, func(r Result) { res = r })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Closest) == 0 {
		t.Fatal("lookup returned nothing")
	}
	malicious := 0
	for _, c := range res.Closest {
		for _, a := range atkContacts {
			if c.ID == a.ID {
				malicious++
				break
			}
		}
	}
	if malicious < len(res.Closest)/2 {
		t.Fatalf("eclipse failed: %d/%d result entries malicious", malicious, len(res.Closest))
	}
}

func TestPresetConfigs(t *testing.T) {
	kad := KADConfig().withDefaults()
	mdht := MDHTConfig().withDefaults()
	if kad.RPCTimeout >= mdht.RPCTimeout {
		t.Fatal("KAD must have tighter timeouts than MDHT")
	}
	if kad.UnresponsiveFrac >= mdht.UnresponsiveFrac {
		t.Fatal("MDHT must have more unresponsive nodes")
	}
}

func TestBootstrapNeedsTwoNodes(t *testing.T) {
	s := sim.New()
	nm := netmodel.New(s)
	nw := NewNetwork(s, nm, Config{})
	nw.AddNode(netmodel.Europe)
	if err := nw.Bootstrap(); err == nil {
		t.Fatal("Bootstrap with one node should error")
	}
}
