// Package kademlia implements the Kademlia DHT (Maymounkov & Mazières 2002)
// as deployed in eMule KAD and the BitTorrent Mainline DHT: k-bucket routing
// tables, iterative α-parallel lookups over an unreliable message-level
// network, per-RPC timeouts, and the sender-learning behaviour that makes
// open deployments vulnerable to sybil poisoning.
//
// The package reproduces the mechanisms behind three of the paper's claims:
// lookup latency divergence between KAD-like and MDHT-like deployments
// (Jiménez et al.), degradation under churn, and sybil/eclipse attacks on
// open identifier assignment.
package kademlia

import (
	"sort"

	"repro/internal/netmodel"
	"repro/internal/overlay"
)

// Contact is a routing-table entry: an overlay identifier plus the network
// address it claims to live at.
type Contact struct {
	ID   overlay.ID
	Addr netmodel.NodeID
}

// Table is a Kademlia routing table: up to IDBits k-buckets indexed by the
// common prefix length with the owner's identifier. Buckets keep
// least-recently-seen contacts at the front and, when full, drop newcomers —
// Kademlia's documented bias toward long-lived peers.
type Table struct {
	self    overlay.ID
	k       int
	buckets [][]Contact
}

// NewTable creates a routing table for the given owner with bucket size k.
func NewTable(self overlay.ID, k int) *Table {
	if k <= 0 {
		k = 20
	}
	return &Table{
		self:    self,
		k:       k,
		buckets: make([][]Contact, overlay.IDBits+1),
	}
}

// K returns the bucket capacity.
func (t *Table) K() int { return t.k }

// Add inserts or refreshes a contact. Existing contacts move to the
// most-recently-seen position; new contacts are appended if the bucket has
// room and dropped otherwise. The owner's own id is never stored. It reports
// whether the contact is present after the call.
func (t *Table) Add(c Contact) bool {
	if c.ID == t.self {
		return false
	}
	idx := overlay.CommonPrefixLen(t.self, c.ID)
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == c.ID {
			// Move to tail (most recently seen).
			copy(b[i:], b[i+1:])
			b[len(b)-1] = c
			return true
		}
	}
	if len(b) < t.k {
		t.buckets[idx] = append(b, c)
		return true
	}
	return false
}

// Remove deletes a contact (e.g. after an RPC timeout).
func (t *Table) Remove(id overlay.ID) {
	idx := overlay.CommonPrefixLen(t.self, id)
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == id {
			t.buckets[idx] = append(b[:i], b[i+1:]...)
			return
		}
	}
}

// Contains reports whether the table currently stores the contact.
func (t *Table) Contains(id overlay.ID) bool {
	idx := overlay.CommonPrefixLen(t.self, id)
	for _, c := range t.buckets[idx] {
		if c.ID == id {
			return true
		}
	}
	return false
}

// Size returns the total number of stored contacts.
func (t *Table) Size() int {
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}

// Closest returns up to n contacts sorted by XOR distance to target.
func (t *Table) Closest(target overlay.ID, n int) []Contact {
	if n <= 0 {
		return nil
	}
	all := make([]Contact, 0, t.Size())
	for _, b := range t.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool {
		return overlay.CloserXOR(target, all[i].ID, all[j].ID)
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Contacts returns a copy of every stored contact (bucket order).
func (t *Table) Contacts() []Contact {
	out := make([]Contact, 0, t.Size())
	for _, b := range t.buckets {
		out = append(out, b...)
	}
	return out
}

// BucketLen returns the number of contacts in the bucket for the given
// common prefix length.
func (t *Table) BucketLen(cpl int) int {
	if cpl < 0 || cpl > overlay.IDBits {
		return 0
	}
	return len(t.buckets[cpl])
}
