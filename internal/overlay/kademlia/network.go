package kademlia

import (
	"errors"
	"sort"
	"time"

	"repro/internal/netmodel"
	"repro/internal/overlay"
	"repro/internal/sim"
)

// Config parameterizes a simulated Kademlia deployment. Two presets capture
// the deployments compared by Jiménez et al.: KADConfig (eMule KAD: adaptive
// short timeouts, mostly reachable peers) and MDHTConfig (BitTorrent
// Mainline: long conservative timeouts, a large unresponsive population
// behind NATs).
type Config struct {
	// K is the bucket size and result-set width (default 16).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// RPCTimeout is how long a node waits before declaring a query dead.
	RPCTimeout time.Duration
	// ReqSize and RespSize are message sizes in bytes.
	ReqSize, RespSize int
	// UnresponsiveFrac is the fraction of nodes that receive but never
	// answer RPCs (NATed/firewalled peers).
	UnresponsiveFrac float64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 16
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.ReqSize <= 0 {
		c.ReqSize = 60
	}
	if c.RespSize <= 0 {
		c.RespSize = 60 + 26*c.K
	}
	if c.UnresponsiveFrac < 0 {
		c.UnresponsiveFrac = 0
	}
	if c.UnresponsiveFrac > 1 {
		c.UnresponsiveFrac = 1
	}
	return c
}

// KADConfig models eMule KAD as measured by Jiménez et al.: small
// unresponsive population and tight timeouts, yielding lookups within
// seconds.
func KADConfig() Config {
	return Config{
		K:                10,
		Alpha:            3,
		RPCTimeout:       2 * time.Second,
		UnresponsiveFrac: 0.15,
	}
}

// MDHTConfig models the BitTorrent Mainline DHT: a large share of
// routing-table entries point at unreachable (NATed) peers, lookups proceed
// serially, and clients wait long, conservative timeouts — yielding median
// lookups around a minute (Jiménez et al. measured ~60 s medians).
func MDHTConfig() Config {
	return Config{
		K:                8,
		Alpha:            1,
		RPCTimeout:       8 * time.Second,
		UnresponsiveFrac: 0.45,
	}
}

// Node is one Kademlia participant.
type Node struct {
	ID   overlay.ID
	Addr netmodel.NodeID

	table      *Table
	responsive bool
	malicious  bool
	// poison, when set on a malicious node, fabricates FIND_NODE replies.
	poison func(target overlay.ID) []Contact
	online bool
}

// Online reports whether the node is currently attached to the network.
func (n *Node) Online() bool { return n.online }

// Responsive reports whether the node answers RPCs.
func (n *Node) Responsive() bool { return n.responsive }

// Malicious reports whether the node is attacker-controlled.
func (n *Node) Malicious() bool { return n.malicious }

// Table exposes the node's routing table (primarily for tests and attack
// measurements).
func (n *Node) Table() *Table { return n.table }

// Network is a simulated Kademlia deployment over a netmodel.Net.
type Network struct {
	sim *sim.Sim
	ss  *sim.ShardedSim // nil when the deployment runs on one kernel
	net *netmodel.Net
	cfg Config
	rng *sim.RNG

	nodes  []*Node
	byAddr map[netmodel.NodeID]*Node

	// Sequential-mode RPC accounting.
	rpcs     int64
	timeouts int64
	// Sharded-mode accounting: one slot per shard, each written only by
	// its owning worker, padded apart so the counters never share a cache
	// line. Summed by RPCs/Timeouts after the run.
	shRPCs     []paddedCount
	shTimeouts []paddedCount
}

// paddedCount keeps per-shard counters on distinct cache lines.
type paddedCount struct {
	n int64
	_ [56]byte
}

// NewNetwork creates an empty deployment.
func NewNetwork(s *sim.Sim, nm *netmodel.Net, cfg Config) *Network {
	return &Network{
		sim:    s,
		net:    nm,
		cfg:    cfg.withDefaults(),
		rng:    s.Stream("kademlia"),
		byAddr: make(map[netmodel.NodeID]*Node),
	}
}

// NewShardedNetwork creates an empty deployment driven by a sharded kernel
// over a sharded net (netmodel.NewSharded on the same driver). A node's
// RPC timeouts and lookup state live on the shard owning it, request
// deliveries execute on the receiver's shard, and replies ride back to the
// origin's — so lookups from origins on different shards proceed
// concurrently inside conservative windows with no shared mutable state.
// Setup (AddNode, Bootstrap, issuing Lookups) stays sequential; identity
// and bootstrap randomness draw from shard 0's "kademlia" stream. Churn
// helpers that mutate shared topology (SetOnline, Rejoin) are setup-time
// only on sharded deployments.
func NewShardedNetwork(ss *sim.ShardedSim, nm *netmodel.Net, cfg Config) *Network {
	return &Network{
		sim:        ss.Shard(0),
		ss:         ss,
		net:        nm,
		cfg:        cfg.withDefaults(),
		rng:        ss.Shard(0).Stream("kademlia"),
		byAddr:     make(map[netmodel.NodeID]*Node),
		shRPCs:     make([]paddedCount, ss.ShardCount()),
		shTimeouts: make([]paddedCount, ss.ShardCount()),
	}
}

// kern returns the kernel a node's control events (timeouts, latency
// stamps) run on.
func (nw *Network) kern(addr netmodel.NodeID) *sim.Sim {
	if nw.ss == nil {
		return nw.sim
	}
	return nw.net.Kernel(addr)
}

// addRPC and addTimeout bump the accounting slot owned by the origin's
// shard; sequential deployments keep the plain counters.
func (nw *Network) addRPC(origin netmodel.NodeID) {
	if nw.ss == nil {
		nw.rpcs++
		return
	}
	nw.shRPCs[nw.net.ShardOf(origin)].n++
}

func (nw *Network) addTimeout(origin netmodel.NodeID) {
	if nw.ss == nil {
		nw.timeouts++
		return
	}
	nw.shTimeouts[nw.net.ShardOf(origin)].n++
}

// Config returns the effective (defaulted) configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Nodes returns the nodes in creation order. The returned slice is shared;
// callers must not modify it.
func (nw *Network) Nodes() []*Node { return nw.nodes }

// RPCs returns the total FIND_NODE queries sent.
func (nw *Network) RPCs() int64 {
	total := nw.rpcs
	for i := range nw.shRPCs {
		total += nw.shRPCs[i].n
	}
	return total
}

// Timeouts returns the total queries that expired without an answer.
func (nw *Network) Timeouts() int64 {
	total := nw.timeouts
	for i := range nw.shTimeouts {
		total += nw.shTimeouts[i].n
	}
	return total
}

// AddNode attaches a new honest node in the given region. Responsiveness is
// drawn from Config.UnresponsiveFrac.
func (nw *Network) AddNode(region netmodel.Region) *Node {
	return nw.addNode(region, overlay.RandomID(nw.rng), !nw.rng.Bool(nw.cfg.UnresponsiveFrac), false)
}

// AddMaliciousNode attaches an attacker-controlled node with a chosen
// identifier. Malicious nodes are always responsive — answering fast is the
// attack. The poison function fabricates its FIND_NODE replies; nil means it
// behaves protocol-correctly (a passive sybil that merely occupies space).
func (nw *Network) AddMaliciousNode(region netmodel.Region, id overlay.ID, poison func(target overlay.ID) []Contact) *Node {
	n := nw.addNode(region, id, true, true)
	n.poison = poison
	return n
}

func (nw *Network) addNode(region netmodel.Region, id overlay.ID, responsive, malicious bool) *Node {
	addr := nw.net.AddNode(region, 0)
	n := &Node{
		ID:         id,
		Addr:       addr,
		table:      NewTable(id, nw.cfg.K),
		responsive: responsive,
		malicious:  malicious,
		online:     true,
	}
	nw.nodes = append(nw.nodes, n)
	nw.byAddr[addr] = n
	return n
}

// SetOnline attaches or detaches a node, mirroring churn transitions.
func (nw *Network) SetOnline(n *Node, online bool) {
	n.online = online
	nw.net.SetUp(n.Addr, online)
}

// Bootstrap populates every online node's routing table as a converged
// network would have it: each node learns its K XOR-closest online
// neighbours plus a sample of distant online contacts. This mirrors the
// steady state reached after every node has performed a self-lookup and
// bucket refreshes, without paying the O(n·lookup) message cost — joins and
// departures after Bootstrap are handled by the normal protocol machinery.
// Offline nodes are excluded (a converged network has evicted them).
func (nw *Network) Bootstrap() error {
	if len(nw.nodes) < 2 {
		return errors.New("kademlia: need at least two nodes to bootstrap")
	}
	order := make([]*Node, 0, len(nw.nodes))
	for _, node := range nw.nodes {
		if node.online {
			order = append(order, node)
		}
	}
	n := len(order)
	if n < 2 {
		return errors.New("kademlia: need at least two online nodes to bootstrap")
	}
	// Sort by identifier; numerically adjacent identifiers share long
	// prefixes, so XOR-closest neighbours are found among the numeric
	// neighbours.
	sort.Slice(order, func(i, j int) bool { return order[i].ID.Cmp(order[j].ID) < 0 })
	window := 4 * nw.cfg.K
	for i, node := range order {
		lo := i - window/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + window
		if hi > n {
			hi = n
			lo = hi - window
			if lo < 0 {
				lo = 0
			}
		}
		neigh := make([]Contact, 0, hi-lo)
		for j := lo; j < hi; j++ {
			if j == i {
				continue
			}
			neigh = append(neigh, Contact{ID: order[j].ID, Addr: order[j].Addr})
		}
		sort.Slice(neigh, func(a, b int) bool {
			return overlay.CloserXOR(node.ID, neigh[a].ID, neigh[b].ID)
		})
		for j := 0; j < len(neigh) && j < nw.cfg.K; j++ {
			node.table.Add(neigh[j])
		}
		// Distant contacts: random online nodes fill the short-prefix
		// buckets that carry most routing progress.
		for j := 0; j < 4*nw.cfg.K; j++ {
			other := order[nw.rng.Intn(n)]
			if other != node {
				node.table.Add(Contact{ID: other.ID, Addr: other.Addr})
			}
		}
	}
	return nil
}

// RandomOnlineNode returns a uniformly chosen online node, or nil if none
// exist. It models the centralized bootstrap servers every deployed DHT
// relies on.
func (nw *Network) RandomOnlineNode() *Node {
	for attempts := 0; attempts < 64; attempts++ {
		n := nw.nodes[nw.rng.Intn(len(nw.nodes))]
		if n.online {
			return n
		}
	}
	for _, n := range nw.nodes {
		if n.online {
			return n
		}
	}
	return nil
}

// Rejoin re-attaches a node after downtime: it wipes the stale routing
// table, seeds it from a bootstrap contact, and performs a self-lookup to
// repopulate its neighbourhood.
func (nw *Network) Rejoin(n *Node, done func()) {
	nw.SetOnline(n, true)
	n.table = NewTable(n.ID, nw.cfg.K)
	boot := nw.RandomOnlineNode()
	if boot == nil || boot == n {
		if done != nil {
			done()
		}
		return
	}
	n.table.Add(Contact{ID: boot.ID, Addr: boot.Addr})
	nw.Lookup(n, n.ID, func(Result) {
		if done != nil {
			done()
		}
	})
}

// ClosestOnline returns the k online, responsive, honest nodes closest to
// target — the ground truth a successful lookup should discover.
func (nw *Network) ClosestOnline(target overlay.ID, k int) []*Node {
	cands := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		if n.online && n.responsive && !n.malicious {
			cands = append(cands, n)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		return overlay.CloserXOR(target, cands[i].ID, cands[j].ID)
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// findNode issues one FIND_NODE RPC and invokes onDone exactly once with
// either the contacts from the reply or ok=false on timeout/drop.
func (nw *Network) findNode(from *Node, to Contact, target overlay.ID, onDone func(contacts []Contact, ok bool)) {
	nw.addRPC(from.Addr)
	answered := false
	var timeout sim.Handle
	// finish runs on the origin's kernel either way: the timeout is
	// scheduled there, and the reply delivery below executes on the
	// origin's shard because the response Send targets from.Addr.
	finish := func(contacts []Contact, ok bool) {
		if answered {
			return
		}
		answered = true
		timeout.Cancel()
		if !ok {
			nw.addTimeout(from.Addr)
		}
		onDone(contacts, ok)
	}
	timeout = nw.kern(from.Addr).After(nw.cfg.RPCTimeout, func() { finish(nil, false) })

	nw.net.Send(from.Addr, to.Addr, nw.cfg.ReqSize, func() {
		recv, ok := nw.byAddr[to.Addr]
		if !ok || !recv.online {
			return
		}
		// Open networks learn the requester — the sybil poisoning vector.
		recv.table.Add(Contact{ID: from.ID, Addr: from.Addr})
		if !recv.responsive {
			return
		}
		var contacts []Contact
		if recv.malicious && recv.poison != nil {
			contacts = recv.poison(target)
		} else {
			contacts = recv.table.Closest(target, nw.cfg.K)
		}
		nw.net.Send(to.Addr, from.Addr, nw.cfg.RespSize, func() {
			finish(contacts, true)
		})
	})
}
