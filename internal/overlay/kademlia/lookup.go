package kademlia

import (
	"sort"
	"time"

	"repro/internal/overlay"
	"repro/internal/sim"
)

// Result summarizes one iterative lookup.
type Result struct {
	// Closest holds the responded contacts ordered by XOR distance to the
	// target, at most K entries.
	Closest []Contact
	// RPCs is the number of FIND_NODE queries issued.
	RPCs int
	// Timeouts is how many of those queries expired unanswered.
	Timeouts int
	// Latency is the virtual time from start to termination.
	Latency time.Duration
	// Converged is true if the lookup terminated because the K closest
	// known candidates all responded (as opposed to running out of
	// candidates).
	Converged bool
}

const (
	statePending = iota + 1
	stateInflight
	stateResponded
	stateFailed
)

type candidate struct {
	contact Contact
	state   int
}

type lookup struct {
	nw     *Network
	kern   *sim.Sim // the origin's kernel: every step of the lookup runs on it
	origin *Node
	target overlay.ID

	cands    []*candidate
	seen     map[overlay.ID]bool
	inflight int
	rpcs     int
	timeouts int
	start    time.Duration
	done     func(Result)
	finished bool
}

// Lookup runs an iterative FIND_NODE lookup from origin toward target,
// invoking done exactly once on termination. The origin must be online;
// otherwise done fires immediately with an empty result.
func (nw *Network) Lookup(origin *Node, target overlay.ID, done func(Result)) {
	kern := nw.kern(origin.Addr)
	l := &lookup{
		nw:     nw,
		kern:   kern,
		origin: origin,
		target: target,
		seen:   make(map[overlay.ID]bool),
		start:  kern.Now(),
		done:   done,
	}
	if !origin.online {
		l.finish(false)
		return
	}
	for _, c := range origin.table.Closest(target, nw.cfg.K) {
		l.add(c)
	}
	l.step()
}

func (l *lookup) add(c Contact) {
	if c.ID == l.origin.ID || l.seen[c.ID] {
		return
	}
	l.seen[c.ID] = true
	l.cands = append(l.cands, &candidate{contact: c, state: statePending})
	sort.Slice(l.cands, func(i, j int) bool {
		return overlay.CloserXOR(l.target, l.cands[i].contact.ID, l.cands[j].contact.ID)
	})
}

// converged reports whether the K closest non-failed candidates have all
// responded — Kademlia's termination condition.
func (l *lookup) converged() bool {
	checked := 0
	for _, c := range l.cands {
		if c.state == stateFailed {
			continue
		}
		if c.state != stateResponded {
			return false
		}
		checked++
		if checked >= l.nw.cfg.K {
			break
		}
	}
	return checked > 0
}

func (l *lookup) step() {
	if l.finished {
		return
	}
	if l.converged() {
		l.finish(true)
		return
	}
	for _, c := range l.cands {
		if l.inflight >= l.nw.cfg.Alpha {
			break
		}
		if c.state != statePending {
			continue
		}
		c.state = stateInflight
		l.inflight++
		l.rpcs++
		cand := c
		l.nw.findNode(l.origin, c.contact, l.target, func(contacts []Contact, ok bool) {
			l.onReply(cand, contacts, ok)
		})
	}
	if l.inflight == 0 {
		// No candidates left to query and not converged: partial result.
		l.finish(false)
	}
}

func (l *lookup) onReply(c *candidate, contacts []Contact, ok bool) {
	if l.finished {
		return
	}
	l.inflight--
	if !ok {
		c.state = stateFailed
		l.timeouts++
		// Evict dead entries — the lazy repair every deployment performs.
		l.origin.table.Remove(c.contact.ID)
	} else {
		c.state = stateResponded
		l.origin.table.Add(c.contact)
		for _, nc := range contacts {
			l.add(nc)
		}
	}
	l.step()
}

func (l *lookup) finish(converged bool) {
	if l.finished {
		return
	}
	l.finished = true
	var closest []Contact
	for _, c := range l.cands {
		if c.state == stateResponded {
			closest = append(closest, c.contact)
			if len(closest) >= l.nw.cfg.K {
				break
			}
		}
	}
	if l.done != nil {
		l.done(Result{
			Closest:   closest,
			RPCs:      l.rpcs,
			Timeouts:  l.timeouts,
			Latency:   l.kern.Now() - l.start,
			Converged: converged,
		})
	}
}
