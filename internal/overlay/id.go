// Package overlay provides the identifier space shared by all structured
// overlays in this repository: 160-bit node/key identifiers, the XOR metric
// used by Kademlia, the clockwise ring metric used by Chord-style overlays,
// and helpers for generating and comparing identifiers.
package overlay

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math/bits"

	"repro/internal/sim"
)

// IDBytes is the identifier width in bytes (160 bits, as in Chord, Pastry,
// Kademlia and their deployed descendants).
const IDBytes = 20

// IDBits is the identifier width in bits.
const IDBits = IDBytes * 8

// ID is a 160-bit overlay identifier. The zero value is the all-zeros
// identifier.
type ID [IDBytes]byte

// RandomID returns an identifier drawn uniformly from the id space. Open
// overlays let nodes self-assign exactly these — the root cause of the sybil
// vulnerability the paper discusses.
func RandomID(g *sim.RNG) ID {
	var buf [24]byte
	for i := 0; i < len(buf); i += 8 {
		binary.BigEndian.PutUint64(buf[i:], g.Uint64())
	}
	var id ID
	copy(id[:], buf[:IDBytes])
	return id
}

// KeyID hashes arbitrary bytes into the identifier space (SHA-256 truncated
// to 160 bits).
func KeyID(data []byte) ID {
	sum := sha256.Sum256(data)
	var id ID
	copy(id[:], sum[:IDBytes])
	return id
}

// String returns a short hex prefix for logs and tables.
func (id ID) String() string { return hex.EncodeToString(id[:4]) }

// Hex returns the full hexadecimal form.
func (id ID) Hex() string { return hex.EncodeToString(id[:]) }

// Bit returns bit i (0 = most significant) of the identifier.
func (id ID) Bit(i int) int {
	if i < 0 || i >= IDBits {
		return 0
	}
	return int(id[i/8]>>(7-uint(i%8))) & 1
}

// XOR returns the bitwise XOR of two identifiers (the Kademlia distance).
func (a ID) XOR(b ID) ID {
	var out ID
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Cmp compares identifiers as unsigned big-endian integers: -1 if a < b, 0
// if equal, +1 if a > b.
func (a ID) Cmp(b ID) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// CommonPrefixLen returns the number of leading bits shared by a and b
// (IDBits when equal). It indexes Kademlia's k-buckets.
func CommonPrefixLen(a, b ID) int {
	for i := range a {
		if x := a[i] ^ b[i]; x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	return IDBits
}

// CloserXOR reports whether a is strictly closer to target than b under the
// XOR metric.
func CloserXOR(target, a, b ID) bool {
	return a.XOR(target).Cmp(b.XOR(target)) < 0
}

// Ring64 maps the identifier onto a 64-bit ring position (used by the Chord
// and one-hop overlays, which operate on a compact ring).
func (id ID) Ring64() uint64 { return binary.BigEndian.Uint64(id[:8]) }

// RingDistance returns the clockwise distance from a to b on the 64-bit
// ring; wrap-around is handled by unsigned arithmetic.
func RingDistance(a, b uint64) uint64 { return b - a }

// RingBetween reports whether x lies in the clockwise-open interval (a, b]
// on the 64-bit ring. It is the successor test used by Chord routing.
func RingBetween(a, x, b uint64) bool {
	if a == b {
		// Full circle: everything except a itself is "between"; by Chord
		// convention a single node owns the whole ring.
		return x != a
	}
	return RingDistance(a, x) != 0 && RingDistance(a, x) <= RingDistance(a, b)
}
