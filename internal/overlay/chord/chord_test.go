package chord

import (
	"math"
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func newRing(t *testing.T, n int, seed int64, cfg Config) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw := NewNetwork(s, nm, cfg)
	for i := 0; i < n; i++ {
		nw.AddNode(netmodel.Europe)
	}
	if err := nw.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s, nw
}

func TestBuildValidation(t *testing.T) {
	s := sim.New()
	nw := NewNetwork(s, netmodel.New(s), Config{})
	nw.AddNode(netmodel.Europe)
	if err := nw.Build(); err == nil {
		t.Fatal("Build with one node should error")
	}
}

func TestBuildConvergedRing(t *testing.T) {
	_, nw := newRing(t, 100, 1, Config{})
	for _, n := range nw.Nodes() {
		if len(n.successors) != nw.Config().SuccessorListLen {
			t.Fatalf("successor list len = %d, want %d", len(n.successors), nw.Config().SuccessorListLen)
		}
		if n.fingers[0].Addr == n.Addr && nw.OwnerOf(n.ID+1).Addr != n.Addr {
			t.Fatal("finger 0 not set")
		}
	}
}

func TestLookupResolvesTrueOwner(t *testing.T) {
	s, nw := newRing(t, 200, 2, Config{})
	wrong := 0
	const lookups = 50
	for i := 0; i < lookups; i++ {
		key := s.Stream("keys").Uint64()
		origin := nw.Nodes()[s.Stream("origins").Intn(200)]
		truth := nw.OwnerOf(key)
		nw.Lookup(origin, key, func(r Result) {
			if !r.OK || r.Owner.Addr != truth.Addr {
				wrong++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wrong != 0 {
		t.Fatalf("%d/%d lookups resolved the wrong owner on a stable ring", wrong, lookups)
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	s, nw := newRing(t, 1024, 3, Config{})
	var totalHops, count int
	for i := 0; i < 60; i++ {
		origin := nw.Nodes()[s.Stream("o").Intn(1024)]
		nw.Lookup(origin, s.Stream("k").Uint64(), func(r Result) {
			if r.OK {
				totalHops += r.Hops
				count++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count < 55 {
		t.Fatalf("only %d lookups succeeded", count)
	}
	mean := float64(totalHops) / float64(count)
	// O(log2 n) = 10; with half-finger expectation ~ 0.5*log2(n)+1 plus the
	// final verification hop. Anything in [2, 10] is the right shape;
	// a linear scan would be ~hundreds.
	if mean < 2 || mean > 10 {
		t.Fatalf("mean hops = %v, want O(log n) ∈ [2,10]", mean)
	}
}

func TestLookupAfterMassFailure(t *testing.T) {
	s, nw := newRing(t, 300, 4, Config{RPCTimeout: time.Second})
	// Kill 20% of nodes without any repair.
	for i := 0; i < 60; i++ {
		nw.SetOnline(nw.Nodes()[i], false)
	}
	okCount, failCount, timeouts := 0, 0, 0
	for i := 0; i < 40; i++ {
		origin := nw.Nodes()[100+s.Stream("o").Intn(200)]
		key := s.Stream("k").Uint64()
		nw.Lookup(origin, key, func(r Result) {
			if r.OK {
				okCount++
			} else {
				failCount++
			}
			timeouts += r.Timeouts
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if okCount < 30 {
		t.Fatalf("only %d/40 lookups survived 20%% failures (successor lists should cover)", okCount)
	}
	if timeouts == 0 {
		t.Fatal("expected some timeout-and-retry with 20% of nodes dead")
	}
}

func TestStabilizeRepairsSuccessor(t *testing.T) {
	s, nw := newRing(t, 100, 5, Config{
		StabilizeInterval:  10 * time.Second,
		FixFingersInterval: time.Hour, // isolate stabilization
		RPCTimeout:         time.Second,
	})
	if err := nw.StartMaintenance(); err != nil {
		t.Fatalf("StartMaintenance: %v", err)
	}
	victim := nw.Nodes()[0]
	// Find victim's predecessor on the ring: the node whose successor is victim.
	var pred *Node
	for _, n := range nw.Nodes() {
		if n.Successor().Addr == victim.Addr {
			pred = n
			break
		}
	}
	if pred == nil {
		t.Fatal("no predecessor found")
	}
	nw.SetOnline(victim, false)
	if err := s.RunUntil(5 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pred.Successor().Addr == victim.Addr {
		t.Fatal("stabilization did not repair dead successor pointer")
	}
	if nw.MaintenanceMessages() == 0 || nw.MaintenanceBytes() == 0 {
		t.Fatal("maintenance traffic not accounted")
	}
	nw.StopMaintenance()
	msgs := nw.MaintenanceMessages()
	if err := s.RunUntil(10 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if nw.MaintenanceMessages() != msgs {
		t.Fatal("maintenance traffic after StopMaintenance")
	}
}

func TestMaintenanceCostPerNodeConstant(t *testing.T) {
	// Chord's defining property vs one-hop: per-node maintenance traffic is
	// independent of n.
	perNode := func(n int) float64 {
		s, nw := newRing(t, n, 6, Config{
			StabilizeInterval:  10 * time.Second,
			FixFingersInterval: time.Hour,
		})
		if err := nw.StartMaintenance(); err != nil {
			t.Fatalf("StartMaintenance: %v", err)
		}
		if err := s.RunUntil(2 * time.Minute); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return float64(nw.MaintenanceBytes()) / float64(n)
	}
	small := perNode(50)
	big := perNode(400)
	if math.Abs(big-small)/small > 0.25 {
		t.Fatalf("per-node maintenance bytes should be ~constant in n: n=50: %v, n=400: %v", small, big)
	}
}

func TestLookupFromOfflineOrigin(t *testing.T) {
	s, nw := newRing(t, 50, 7, Config{})
	n := nw.Nodes()[0]
	nw.SetOnline(n, false)
	var got *Result
	nw.Lookup(n, 12345, func(r Result) { got = &r })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil || got.OK {
		t.Fatal("offline origin must yield a failed result")
	}
}

func TestOwnerOf(t *testing.T) {
	_, nw := newRing(t, 10, 8, Config{})
	key := nw.Nodes()[3].ID // a node's own id is owned by that node
	if nw.OwnerOf(key).Addr != nw.Nodes()[3].Addr {
		t.Fatal("OwnerOf(node.ID) should be the node itself")
	}
}
