// Package chord implements the Chord structured overlay (Stoica et al.
// 2001): a 64-bit identifier ring with successor lists, finger tables,
// iterative greedy routing, and the periodic stabilization protocol whose
// traffic constitutes the overlay's maintenance cost.
//
// It provides the multi-hop baseline for the paper's one-hop-vs-multi-hop
// comparison (E5): lookups take O(log n) hops, but per-node maintenance
// traffic is constant in n.
package chord

import (
	"errors"
	"sort"
	"time"

	"repro/internal/netmodel"
	"repro/internal/overlay"
	"repro/internal/sim"
)

// FingerBits is the ring width in bits; fingers[i] targets self+2^i.
const FingerBits = 64

// Contact pairs a ring position with a network address.
type Contact struct {
	ID   uint64
	Addr netmodel.NodeID
}

// Config parameterizes a Chord deployment.
type Config struct {
	// SuccessorListLen is the replication factor of successor pointers
	// (default 8); the ring survives as long as one successor is alive.
	SuccessorListLen int
	// StabilizeInterval is the period of the successor-repair protocol.
	StabilizeInterval time.Duration
	// FixFingersInterval is the period at which each node refreshes one
	// finger-table entry via a lookup.
	FixFingersInterval time.Duration
	// RPCTimeout bounds each hop's wait for an answer.
	RPCTimeout time.Duration
	// ReqSize and RespSize are per-message byte sizes.
	ReqSize, RespSize int
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen <= 0 {
		c.SuccessorListLen = 8
	}
	if c.StabilizeInterval <= 0 {
		c.StabilizeInterval = 30 * time.Second
	}
	if c.FixFingersInterval <= 0 {
		c.FixFingersInterval = time.Minute
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.ReqSize <= 0 {
		c.ReqSize = 40
	}
	if c.RespSize <= 0 {
		c.RespSize = 120
	}
	return c
}

// Node is one Chord participant.
type Node struct {
	ID   uint64
	Addr netmodel.NodeID

	successors []Contact // ordered clockwise, length <= SuccessorListLen
	fingers    [FingerBits]Contact
	online     bool
}

// Online reports whether the node is attached.
func (n *Node) Online() bool { return n.online }

// Successor returns the node's first live successor pointer.
func (n *Node) Successor() Contact {
	if len(n.successors) == 0 {
		return Contact{ID: n.ID, Addr: n.Addr}
	}
	return n.successors[0]
}

// Result summarizes one lookup.
type Result struct {
	// Owner is the contact the lookup resolved to.
	Owner Contact
	// Hops is the number of routing hops taken (1 hop = 1 request).
	Hops int
	// Timeouts counts hops that had to be retried after a dead pointer.
	Timeouts int
	// Latency is virtual time from issue to resolution.
	Latency time.Duration
	// OK is false if routing failed entirely.
	OK bool
}

// Network is a simulated Chord ring.
type Network struct {
	sim *sim.Sim
	net *netmodel.Net
	cfg Config
	rng *sim.RNG

	nodes  []*Node
	byAddr map[netmodel.NodeID]*Node

	maintMsgs  int64
	maintBytes int64
	tickers    []*sim.Ticker
}

// NewNetwork creates an empty ring.
func NewNetwork(s *sim.Sim, nm *netmodel.Net, cfg Config) *Network {
	return &Network{
		sim:    s,
		net:    nm,
		cfg:    cfg.withDefaults(),
		rng:    s.Stream("chord"),
		byAddr: make(map[netmodel.NodeID]*Node),
	}
}

// Config returns the effective configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Nodes returns all nodes in creation order (shared slice; do not modify).
func (nw *Network) Nodes() []*Node { return nw.nodes }

// MaintenanceBytes returns cumulative stabilization traffic in bytes.
func (nw *Network) MaintenanceBytes() int64 { return nw.maintBytes }

// MaintenanceMessages returns cumulative stabilization message count.
func (nw *Network) MaintenanceMessages() int64 { return nw.maintMsgs }

// AddNode attaches a node with a random ring position in the given region.
func (nw *Network) AddNode(region netmodel.Region) *Node {
	n := &Node{
		ID:     nw.rng.Uint64(),
		Addr:   nw.net.AddNode(region, 0),
		online: true,
	}
	nw.nodes = append(nw.nodes, n)
	nw.byAddr[n.Addr] = n
	return n
}

// Build constructs the converged ring: successor lists and finger tables set
// exactly as infinite stabilization would leave them. Subsequent churn is
// repaired by the protocol machinery.
func (nw *Network) Build() error {
	n := len(nw.nodes)
	if n < 2 {
		return errors.New("chord: need at least two nodes")
	}
	ring := make([]*Node, n)
	copy(ring, nw.nodes)
	sort.Slice(ring, func(i, j int) bool { return ring[i].ID < ring[j].ID })
	for i, node := range ring {
		node.successors = node.successors[:0]
		for j := 1; j <= nw.cfg.SuccessorListLen && j < n; j++ {
			s := ring[(i+j)%n]
			node.successors = append(node.successors, Contact{ID: s.ID, Addr: s.Addr})
		}
		for b := 0; b < FingerBits; b++ {
			start := node.ID + 1<<uint(b)
			s := successorOf(ring, start)
			node.fingers[b] = Contact{ID: s.ID, Addr: s.Addr}
		}
	}
	return nil
}

// successorOf returns the first node clockwise from key in the sorted ring.
func successorOf(ring []*Node, key uint64) *Node {
	idx := sort.Search(len(ring), func(i int) bool { return ring[i].ID >= key })
	if idx == len(ring) {
		idx = 0
	}
	return ring[idx]
}

// SetOnline attaches or detaches a node (churn transition).
func (nw *Network) SetOnline(n *Node, online bool) {
	n.online = online
	nw.net.SetUp(n.Addr, online)
}

// StartMaintenance launches the stabilize and fix-fingers tickers on every
// node. Call StopMaintenance to halt them.
func (nw *Network) StartMaintenance() error {
	for _, n := range nw.nodes {
		n := n
		t1, err := nw.sim.Every(nw.rng.Jitter(nw.cfg.StabilizeInterval, 0.2), func() { nw.stabilize(n) })
		if err != nil {
			return err
		}
		t2, err := nw.sim.Every(nw.rng.Jitter(nw.cfg.FixFingersInterval, 0.2), func() { nw.fixFinger(n) })
		if err != nil {
			return err
		}
		nw.tickers = append(nw.tickers, t1, t2)
	}
	return nil
}

// StopMaintenance halts all maintenance tickers.
func (nw *Network) StopMaintenance() {
	for _, t := range nw.tickers {
		t.Stop()
	}
	nw.tickers = nil
}

// stabilize pings the first successor; on timeout it promotes the next live
// entry, then refreshes its successor list from the (new) successor.
func (nw *Network) stabilize(n *Node) {
	if !n.online || len(n.successors) == 0 {
		return
	}
	succ := n.successors[0]
	nw.rpc(n, succ.Addr, true, func(peer *Node, ok bool) {
		if !ok {
			// Successor dead: drop it; next stabilization round uses the
			// promoted entry.
			if len(n.successors) > 0 && n.successors[0].ID == succ.ID {
				n.successors = n.successors[1:]
			}
			return
		}
		// Adopt the successor's list shifted by one (classic Chord repair).
		list := make([]Contact, 0, nw.cfg.SuccessorListLen)
		list = append(list, Contact{ID: peer.ID, Addr: peer.Addr})
		for _, c := range peer.successors {
			if len(list) >= nw.cfg.SuccessorListLen {
				break
			}
			if c.ID != n.ID {
				list = append(list, c)
			}
		}
		n.successors = list
	})
}

// fixFinger refreshes one random finger entry by routing to its start key.
// Fix-finger lookups count as maintenance traffic.
func (nw *Network) fixFinger(n *Node) {
	if !n.online {
		return
	}
	b := nw.rng.Intn(FingerBits)
	start := n.ID + 1<<uint(b)
	nw.lookup(n, start, true, func(r Result) {
		if r.OK {
			n.fingers[b] = r.Owner
		}
	})
}

// rpc sends a request and reports the peer (by direct reference — payload
// contents are modelled, not serialized) or ok=false on timeout. Messages
// flagged maint accrue to the maintenance-traffic counters.
func (nw *Network) rpc(from *Node, to netmodel.NodeID, maint bool, onDone func(peer *Node, ok bool)) {
	if maint {
		nw.maintMsgs++
		nw.maintBytes += int64(nw.cfg.ReqSize)
	}
	answered := false
	var timeout sim.Handle
	finish := func(p *Node, ok bool) {
		if answered {
			return
		}
		answered = true
		timeout.Cancel()
		onDone(p, ok)
	}
	timeout = nw.sim.After(nw.cfg.RPCTimeout, func() { finish(nil, false) })
	nw.net.Send(from.Addr, to, nw.cfg.ReqSize, func() {
		peer, ok := nw.byAddr[to]
		if !ok || !peer.online {
			return
		}
		if maint {
			nw.maintMsgs++
			nw.maintBytes += int64(nw.cfg.RespSize)
		}
		nw.net.Send(to, from.Addr, nw.cfg.RespSize, func() { finish(peer, true) })
	})
}

// Lookup routes iteratively from origin to the owner of key, invoking done
// exactly once. The final hop verifies the owner answers, so OK results
// always denote a live owner.
func (nw *Network) Lookup(origin *Node, key uint64, done func(Result)) {
	nw.lookup(origin, key, false, done)
}

func (nw *Network) lookup(origin *Node, key uint64, maint bool, done func(Result)) {
	l := &chordLookup{
		nw:     nw,
		origin: origin,
		key:    key,
		maint:  maint,
		start:  nw.sim.Now(),
		done:   done,
	}
	if !origin.online {
		l.finish(Contact{}, false)
		return
	}
	l.visit(origin)
}

type chordLookup struct {
	nw       *Network
	origin   *Node
	key      uint64
	maint    bool
	hops     int
	timeouts int
	start    time.Duration
	done     func(Result)
	finished bool
}

const maxHops = 64

// visit runs the routing step using node's pointers (the origin has just
// learned them, either locally or from the preceding hop's reply).
func (l *chordLookup) visit(node *Node) {
	if l.finished {
		return
	}
	if l.hops > maxHops {
		l.finish(Contact{}, false)
		return
	}
	succ := node.Successor()
	if succ.Addr == node.Addr {
		// Degenerate state (successor list exhausted): treat the node
		// itself as owner if it is the origin, otherwise fail.
		l.finish(Contact{ID: node.ID, Addr: node.Addr}, node.online)
		return
	}
	if overlay.RingBetween(node.ID, l.key, succ.ID) {
		// The key falls between this node and its successor: verify the
		// owner answers before declaring success.
		l.hops++
		l.nw.rpc(l.origin, succ.Addr, l.maint, func(peer *Node, ok bool) {
			if l.finished {
				return
			}
			if !ok {
				l.timeouts++
				removeContact(node, succ.ID)
				l.visit(node)
				return
			}
			l.finish(Contact{ID: peer.ID, Addr: peer.Addr}, true)
		})
		return
	}
	next := closestPreceding(node, l.key)
	if next.Addr == node.Addr {
		l.finish(succ, false)
		return
	}
	l.hop(next, node)
}

// hop queries next remotely; on timeout it retries via the current node's
// next-best pointer.
func (l *chordLookup) hop(next Contact, from *Node) {
	l.hops++
	l.nw.rpc(l.origin, next.Addr, l.maint, func(peer *Node, ok bool) {
		if l.finished {
			return
		}
		if !ok {
			l.timeouts++
			// Drop the dead pointer from the holder's state and retry.
			removeContact(from, next.ID)
			l.visit(from)
			return
		}
		l.visit(peer)
	})
}

func (l *chordLookup) finish(owner Contact, ok bool) {
	if l.finished {
		return
	}
	l.finished = true
	if l.done != nil {
		l.done(Result{
			Owner:    owner,
			Hops:     l.hops,
			Timeouts: l.timeouts,
			Latency:  l.nw.sim.Now() - l.start,
			OK:       ok,
		})
	}
}

// closestPreceding returns the live-believed pointer most closely preceding
// key among the node's fingers and successors (standard Chord routing).
func closestPreceding(n *Node, key uint64) Contact {
	best := Contact{ID: n.ID, Addr: n.Addr}
	consider := func(c Contact) {
		if c.Addr == n.Addr {
			return
		}
		if overlay.RingBetween(n.ID, c.ID, key) && overlay.RingBetween(best.ID, c.ID, key) {
			best = c
		}
	}
	for i := FingerBits - 1; i >= 0; i-- {
		consider(n.fingers[i])
	}
	for _, c := range n.successors {
		consider(c)
	}
	return best
}

// removeContact erases a dead pointer from fingers and successor list.
func removeContact(n *Node, id uint64) {
	for i := range n.fingers {
		if n.fingers[i].ID == id {
			n.fingers[i] = Contact{ID: n.ID, Addr: n.Addr}
		}
	}
	for i := 0; i < len(n.successors); {
		if n.successors[i].ID == id {
			n.successors = append(n.successors[:i], n.successors[i+1:]...)
		} else {
			i++
		}
	}
}

// OwnerOf returns the ground-truth current owner of key among online nodes.
func (nw *Network) OwnerOf(key uint64) *Node {
	var ring []*Node
	for _, n := range nw.nodes {
		if n.online {
			ring = append(ring, n)
		}
	}
	if len(ring) == 0 {
		return nil
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].ID < ring[j].ID })
	return successorOf(ring, key)
}
