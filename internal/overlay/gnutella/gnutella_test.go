package gnutella

import (
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func newFlat(t *testing.T, n int, seed int64, cfg Config) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw, err := NewNetwork(s, nm, n, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return s, nw
}

func TestValidation(t *testing.T) {
	s := sim.New()
	if _, err := NewNetwork(s, netmodel.New(s), 2, Config{}); err == nil {
		t.Fatal("n<3 should error")
	}
}

func TestFloodFindsWidelySharedItem(t *testing.T) {
	s, nw := newFlat(t, 300, 1, Config{TTL: 7})
	// 10% of nodes share item 1.
	for i := 0; i < 30; i++ {
		nw.Share(i*10, 1)
	}
	var res QueryResult
	nw.Query(150, 1, func(r QueryResult) { res = r })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Found {
		t.Fatal("widely shared item not found")
	}
	if len(res.Providers) < 5 {
		t.Fatalf("found only %d providers, expected many within TTL 7", len(res.Providers))
	}
	if res.FirstHit <= 0 {
		t.Fatal("FirstHit latency not recorded")
	}
}

func TestTTLBoundsReach(t *testing.T) {
	// With TTL 1 only direct neighbours are reachable.
	s, nw := newFlat(t, 300, 2, Config{TTL: 1})
	for i := 0; i < 300; i++ {
		if i != 150 {
			nw.Share(i, 1)
		}
	}
	var res QueryResult
	nw.Query(150, 1, func(r QueryResult) { res = r })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Reach = origin + neighbours + their neighbours (TTL decrements on
	// each forward), far below 299 providers.
	if len(res.Providers) > 60 {
		t.Fatalf("TTL 1 reached %d providers, expected a small neighbourhood", len(res.Providers))
	}
}

func TestRareItemOftenMissedWithSmallTTL(t *testing.T) {
	s, nw := newFlat(t, 500, 3, Config{TTL: 2})
	nw.Share(499, 1) // single provider
	misses := 0
	const tries = 10
	for i := 0; i < tries; i++ {
		nw.Query(i*7, 1, func(r QueryResult) {
			if !r.Found {
				misses++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if misses == 0 {
		t.Fatal("TTL-limited flooding should miss rare items from distant origins")
	}
}

func TestFloodTrafficScale(t *testing.T) {
	s, nw := newFlat(t, 400, 4, Config{TTL: 7, Degree: 6})
	var res QueryResult
	nw.Query(0, 12345, func(r QueryResult) { res = r }) // item nobody has
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Flooding an item nobody shares still visits most of the graph.
	if res.Messages < 400 {
		t.Fatalf("flood generated only %d messages; expected ~n*degree/2", res.Messages)
	}
	if res.Found {
		t.Fatal("nonexistent item reported found")
	}
}

func TestSuperpeerModeFindsLeafContent(t *testing.T) {
	s, nw := newFlat(t, 310, 5, Config{Superpeer: true, LeavesPerSuper: 30, TTL: 4})
	// Find a leaf and share an item on it.
	leaf := -1
	for i := 0; i < nw.Size(); i++ {
		if !nw.IsSuper(i) {
			leaf = i
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no leaves in superpeer topology")
	}
	nw.Share(leaf, 42)
	origin := leaf + 1
	for nw.IsSuper(origin) {
		origin++
	}
	var res QueryResult
	nw.Query(origin, 42, func(r QueryResult) { res = r })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Found {
		t.Fatal("superpeer index failed to locate leaf content")
	}
	if res.Providers[0] != leaf {
		t.Fatalf("provider = %d, want leaf %d", res.Providers[0], leaf)
	}
}

func TestSuperpeerTrafficFarBelowFlat(t *testing.T) {
	run := func(superpeer bool) int {
		s, nw := newFlat(t, 310, 6, Config{Superpeer: superpeer, TTL: 7})
		var msgs int
		nw.Query(5, 9999, func(r QueryResult) { msgs = r.Messages })
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return msgs
	}
	flat := run(false)
	sp := run(true)
	if sp*3 > flat {
		t.Fatalf("superpeer flood (%d msgs) should be far below flat flood (%d msgs)", sp, flat)
	}
}

func TestUploadAccounting(t *testing.T) {
	_, nw := newFlat(t, 10, 7, Config{})
	nw.RecordDownload(3)
	nw.RecordDownload(3)
	nw.RecordDownload(7)
	if nw.Uploads(3) != 2 || nw.Uploads(7) != 1 {
		t.Fatal("upload counters wrong")
	}
	counts := nw.UploadCounts()
	if counts[3] != 2 {
		t.Fatal("UploadCounts copy wrong")
	}
	counts[3] = 99
	if nw.Uploads(3) != 2 {
		t.Fatal("UploadCounts must be a copy")
	}
	nw.RecordDownload(-1) // no-op
	nw.RecordDownload(99) // no-op
}

func TestSharedCount(t *testing.T) {
	_, nw := newFlat(t, 10, 8, Config{})
	nw.Share(0, 1)
	nw.Share(0, 2)
	nw.Share(0, 1) // duplicate
	if nw.SharedCount(0) != 2 {
		t.Fatalf("SharedCount = %d, want 2", nw.SharedCount(0))
	}
}

func TestQueryCompletesWithinTimeout(t *testing.T) {
	s, nw := newFlat(t, 100, 9, Config{QueryTimeout: 5 * time.Second})
	doneAt := time.Duration(-1)
	nw.Query(0, 1, func(QueryResult) { doneAt = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if doneAt < 0 {
		t.Fatal("query never completed")
	}
	if doneAt > 5*time.Second {
		t.Fatalf("query completed at %v, after the timeout", doneAt)
	}
}
