// Package gnutella implements an unstructured file-sharing overlay in the
// style of Gnutella 0.4 (flat random graph, TTL-limited query flooding) and
// its superpeer successors (Kazaa/eDonkey-style two-tier topology).
//
// It underpins the paper's free-riding claim (E2, Adar & Huberman): with no
// incentive mechanism, most peers share nothing, the small sharing minority
// carries nearly all uploads, and the flood traffic per query is enormous
// compared to the two-tier design.
package gnutella

import (
	"errors"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Config parameterizes the overlay.
type Config struct {
	// Degree is the number of neighbours each flat-mode node links to
	// (default 6, roughly the measured Gnutella mean).
	Degree int
	// TTL is the flood horizon in hops (default 7, the Gnutella default).
	TTL int
	// QuerySize and HitSize are message sizes in bytes.
	QuerySize, HitSize int
	// Superpeer selects the two-tier topology.
	Superpeer bool
	// LeavesPerSuper is the leaf fan-in of each superpeer (default 30).
	LeavesPerSuper int
	// QueryTimeout bounds how long a query waits for the flood to die out.
	QueryTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Degree <= 0 {
		c.Degree = 6
	}
	if c.TTL <= 0 {
		c.TTL = 7
	}
	if c.QuerySize <= 0 {
		c.QuerySize = 80
	}
	if c.HitSize <= 0 {
		c.HitSize = 120
	}
	if c.LeavesPerSuper <= 0 {
		c.LeavesPerSuper = 30
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	return c
}

// QueryResult summarizes one flooded search.
type QueryResult struct {
	// Providers lists nodes that answered with a hit.
	Providers []int
	// Messages is the total query + hit messages generated.
	Messages int
	// FirstHit is the latency to the first hit (0 if none).
	FirstHit time.Duration
	// Found reports whether any provider responded.
	Found bool
}

// Network is a simulated unstructured overlay.
type Network struct {
	sim *sim.Sim
	net *netmodel.Net
	cfg Config
	rng *sim.RNG

	addrs   []netmodel.NodeID
	adj     [][]int
	isSuper []bool
	superOf []int // leaf -> its superpeer (-1 in flat mode)
	shares  []map[int]bool
	uploads []int64
	built   bool

	queryCount int
}

// NewNetwork creates an overlay with n nodes in the given region.
func NewNetwork(s *sim.Sim, nm *netmodel.Net, n int, cfg Config) (*Network, error) {
	if n < 3 {
		return nil, errors.New("gnutella: need at least three nodes")
	}
	nw := &Network{
		sim: s,
		net: nm,
		cfg: cfg.withDefaults(),
		rng: s.Stream("gnutella"),
	}
	nw.addrs = make([]netmodel.NodeID, n)
	nw.shares = make([]map[int]bool, n)
	nw.uploads = make([]int64, n)
	nw.adj = make([][]int, n)
	nw.superOf = make([]int, n)
	nw.isSuper = make([]bool, n)
	for i := 0; i < n; i++ {
		nw.addrs[i] = nm.AddNode(netmodel.Europe, 0)
		nw.shares[i] = make(map[int]bool)
		nw.superOf[i] = -1
	}
	nw.build()
	return nw, nil
}

// build wires the topology: a connected random graph in flat mode; a random
// graph among superpeers with leaves attached in two-tier mode.
func (nw *Network) build() {
	n := len(nw.addrs)
	link := func(a, b int) {
		if a == b {
			return
		}
		for _, x := range nw.adj[a] {
			if x == b {
				return
			}
		}
		nw.adj[a] = append(nw.adj[a], b)
		nw.adj[b] = append(nw.adj[b], a)
	}
	if !nw.cfg.Superpeer {
		// Ring + random chords: connected with ~Degree mean degree.
		for i := 0; i < n; i++ {
			link(i, (i+1)%n)
		}
		extra := (nw.cfg.Degree - 2) * n / 2
		for e := 0; e < extra; e++ {
			link(nw.rng.Intn(n), nw.rng.Intn(n))
		}
		return
	}
	superCount := (n + nw.cfg.LeavesPerSuper) / (nw.cfg.LeavesPerSuper + 1)
	if superCount < 2 {
		superCount = 2
	}
	for i := 0; i < superCount; i++ {
		nw.isSuper[i] = true
	}
	for i := 0; i < superCount; i++ {
		link(i, (i+1)%superCount)
	}
	extra := (nw.cfg.Degree - 2) * superCount / 2
	for e := 0; e < extra; e++ {
		link(nw.rng.Intn(superCount), nw.rng.Intn(superCount))
	}
	for i := superCount; i < n; i++ {
		nw.superOf[i] = nw.rng.Intn(superCount)
	}
}

// Size returns the node count.
func (nw *Network) Size() int { return len(nw.addrs) }

// IsSuper reports whether node i is a superpeer (always false in flat mode).
func (nw *Network) IsSuper(i int) bool { return nw.isSuper[i] }

// Share marks node i as sharing the given item.
func (nw *Network) Share(node, item int) { nw.shares[node][item] = true }

// SharedCount returns how many items node i shares.
func (nw *Network) SharedCount(node int) int { return len(nw.shares[node]) }

// Uploads returns the number of uploads node i has served.
func (nw *Network) Uploads(node int) int64 { return nw.uploads[node] }

// UploadCounts returns a copy of all upload counters.
func (nw *Network) UploadCounts() []float64 {
	out := make([]float64, len(nw.uploads))
	for i, u := range nw.uploads {
		out[i] = float64(u)
	}
	return out
}

// RecordDownload attributes one upload to the given provider (called by the
// experiment after choosing among a query's providers).
func (nw *Network) RecordDownload(provider int) {
	if provider >= 0 && provider < len(nw.uploads) {
		nw.uploads[provider]++
	}
}

// holders reports whether node i can answer a query for item: in flat mode
// its own shares; in superpeer mode a superpeer also indexes its leaves.
func (nw *Network) holdersAt(node, item int) []int {
	var out []int
	if nw.shares[node][item] {
		out = append(out, node)
	}
	if nw.isSuper[node] {
		for leaf, sp := range nw.superOf {
			if sp == node && nw.shares[leaf][item] {
				out = append(out, leaf)
			}
		}
	}
	return out
}

type query struct {
	nw        *Network
	item      int
	origin    int
	seen      []bool
	pending   int
	messages  int
	providers []int
	provSeen  map[int]bool
	firstHit  time.Duration
	start     time.Duration
	done      func(QueryResult)
	finished  bool
	timeout   sim.Handle
}

// Query floods a search for item from the origin node and calls done exactly
// once when the flood dies out (or the safety timeout fires).
func (nw *Network) Query(origin, item int, done func(QueryResult)) {
	nw.queryCount++
	q := &query{
		nw:       nw,
		item:     item,
		origin:   origin,
		seen:     make([]bool, len(nw.addrs)),
		provSeen: make(map[int]bool),
		start:    nw.sim.Now(),
		done:     done,
	}
	q.timeout = nw.sim.After(nw.cfg.QueryTimeout, q.finish)

	start := origin
	if nw.cfg.Superpeer && !nw.isSuper[origin] {
		// Leaf forwards to its superpeer; the flood happens up there.
		sp := nw.superOf[origin]
		q.seen[origin] = true
		q.send(origin, sp, nw.cfg.TTL)
		q.settle()
		return
	}
	q.visit(start, nw.cfg.TTL)
	q.settle()
}

// visit processes the query arriving at a node with remaining TTL.
func (q *query) visit(node, ttl int) {
	if q.seen[node] {
		return
	}
	q.seen[node] = true
	for _, p := range q.nw.holdersAt(node, q.item) {
		if !q.provSeen[p] {
			q.provSeen[p] = true
			q.hit(node, p)
		}
	}
	if ttl <= 0 {
		return
	}
	for _, nb := range q.nw.adj[node] {
		if !q.seen[nb] {
			q.send(node, nb, ttl-1)
		}
	}
}

// send forwards the query over one edge.
func (q *query) send(from, to, ttl int) {
	q.messages++
	q.pending++
	ok := q.nw.net.Send(q.nw.addrs[from], q.nw.addrs[to], q.nw.cfg.QuerySize, func() {
		q.pending--
		q.visit(to, ttl)
		q.settle()
	})
	if !ok {
		q.pending--
	}
}

// hit sends a query-hit from the answering node back to the origin.
func (q *query) hit(at, provider int) {
	q.messages++
	q.pending++
	ok := q.nw.net.Send(q.nw.addrs[at], q.nw.addrs[q.origin], q.nw.cfg.HitSize, func() {
		q.pending--
		if q.firstHit == 0 {
			q.firstHit = q.nw.sim.Now() - q.start
		}
		q.providers = append(q.providers, provider)
		q.settle()
	})
	if !ok {
		q.pending--
	}
}

// settle finishes the query once no messages remain in flight.
func (q *query) settle() {
	if !q.finished && q.pending == 0 {
		q.finish()
	}
}

func (q *query) finish() {
	if q.finished {
		return
	}
	q.finished = true
	q.timeout.Cancel()
	if q.done != nil {
		q.done(QueryResult{
			Providers: q.providers,
			Messages:  q.messages,
			FirstHit:  q.firstHit,
			Found:     len(q.providers) > 0,
		})
	}
}
