// Package onehop implements a full-membership, one-hop overlay in the style
// of Gupta, Liskov and Rodrigues ("One Hop Lookups for Peer-to-Peer
// Overlays", HotOS 2003): every node knows every other node, lookups are a
// single direct RPC, and the price is disseminating every membership event
// to the whole network through a slice/unit aggregation hierarchy.
//
// The package supports the paper's E5 claim — for 10k–100k reasonably stable
// nodes, full membership with one-hop routing is feasible and preferable to
// multi-hop overlays — with two components:
//
//   - a message-level lookup simulation in which each node routes on a view
//     of membership that lags reality by the dissemination delay, so lookups
//     to recently departed nodes time out and retry (the real failure mode
//     of one-hop designs under churn); and
//
//   - an analytic maintenance-bandwidth model of the dissemination
//     hierarchy, driven by the same churn parameters, reproducing the
//     "is it feasible?" arithmetic of the original paper.
package onehop

import (
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Config parameterizes the lookup-path simulation.
type Config struct {
	// ViewLag is how long a membership event takes to reach all nodes
	// (Gupta et al. report tens of seconds for their hierarchy).
	ViewLag time.Duration
	// RPCTimeout bounds each attempt.
	RPCTimeout time.Duration
	// ReqSize and RespSize are per-message byte sizes.
	ReqSize, RespSize int
	// MaxAttempts bounds retries through the believed successor list.
	MaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.ViewLag <= 0 {
		c.ViewLag = 30 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.ReqSize <= 0 {
		c.ReqSize = 40
	}
	if c.RespSize <= 0 {
		c.RespSize = 120
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	return c
}

// Node is one participant.
type Node struct {
	ID   uint64
	Addr netmodel.NodeID

	online     bool
	prevOnline bool
	lastChange time.Duration
}

// Online reports the node's true current state.
func (n *Node) Online() bool { return n.online }

// Result summarizes one lookup.
type Result struct {
	// Owner is the node that finally answered.
	Owner netmodel.NodeID
	// Attempts is the number of RPCs issued (1 = clean one-hop).
	Attempts int
	// Latency is virtual time from issue to answer.
	Latency time.Duration
	// OK reports whether any attempt succeeded.
	OK bool
}

// Network is a one-hop overlay simulation.
type Network struct {
	sim *sim.Sim
	net *netmodel.Net
	cfg Config
	rng *sim.RNG

	nodes  []*Node // sorted by ID after Build
	byAddr map[netmodel.NodeID]*Node
	built  bool
}

// NewNetwork creates an empty overlay.
func NewNetwork(s *sim.Sim, nm *netmodel.Net, cfg Config) *Network {
	return &Network{
		sim:    s,
		net:    nm,
		cfg:    cfg.withDefaults(),
		rng:    s.Stream("onehop"),
		byAddr: make(map[netmodel.NodeID]*Node),
	}
}

// Config returns the effective configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Nodes returns all nodes (sorted by ring id after Build; shared slice).
func (nw *Network) Nodes() []*Node { return nw.nodes }

// AddNode attaches a node with a random ring position.
func (nw *Network) AddNode(region netmodel.Region) *Node {
	n := &Node{
		ID:   nw.rng.Uint64(),
		Addr: nw.net.AddNode(region, 0),
		// Nodes start online and their membership is "old news": views
		// already reflect it.
		online:     true,
		prevOnline: true,
	}
	nw.nodes = append(nw.nodes, n)
	nw.byAddr[n.Addr] = n
	return n
}

// Build finalizes membership (sorts the ring). Call once after adding nodes.
func (nw *Network) Build() error {
	if len(nw.nodes) < 2 {
		return errors.New("onehop: need at least two nodes")
	}
	sort.Slice(nw.nodes, func(i, j int) bool { return nw.nodes[i].ID < nw.nodes[j].ID })
	nw.built = true
	return nil
}

// SetOnline records a membership transition. The new state becomes visible
// to other nodes' views only after Config.ViewLag.
func (nw *Network) SetOnline(n *Node, online bool) {
	if n.online == online {
		return
	}
	n.prevOnline = n.online
	n.online = online
	n.lastChange = nw.sim.Now()
	nw.net.SetUp(n.Addr, online)
}

// believedOnline reports the state of x as seen by a node whose view lags
// reality by the dissemination delay.
func (nw *Network) believedOnline(x *Node) bool {
	if nw.sim.Now()-x.lastChange >= nw.cfg.ViewLag {
		return x.online
	}
	return x.prevOnline
}

// believedSuccessors returns up to k nodes clockwise from key believed
// online by the observer's (lagged) view.
func (nw *Network) believedSuccessors(key uint64, k int) []*Node {
	n := len(nw.nodes)
	idx := sort.Search(n, func(i int) bool { return nw.nodes[i].ID >= key })
	out := make([]*Node, 0, k)
	for off := 0; off < n && len(out) < k; off++ {
		cand := nw.nodes[(idx+off)%n]
		if nw.believedOnline(cand) {
			out = append(out, cand)
		}
	}
	return out
}

// OwnerOf returns the true current owner of key among online nodes, or nil
// if no node is online.
func (nw *Network) OwnerOf(key uint64) *Node {
	n := len(nw.nodes)
	idx := sort.Search(n, func(i int) bool { return nw.nodes[i].ID >= key })
	for off := 0; off < n; off++ {
		cand := nw.nodes[(idx+off)%n]
		if cand.online {
			return cand
		}
	}
	return nil
}

// Lookup issues a one-hop lookup from origin for key, retrying through the
// believed successor list on timeout, and invokes done exactly once.
func (nw *Network) Lookup(origin *Node, key uint64, done func(Result)) {
	if !nw.built || !origin.online {
		if done != nil {
			done(Result{})
		}
		return
	}
	cands := nw.believedSuccessors(key, nw.cfg.MaxAttempts)
	start := nw.sim.Now()
	var attempt func(i int)
	attempt = func(i int) {
		if i >= len(cands) {
			if done != nil {
				done(Result{Attempts: i, Latency: nw.sim.Now() - start})
			}
			return
		}
		target := cands[i]
		answered := false
		var timeout sim.Handle
		finish := func(ok bool) {
			if answered {
				return
			}
			answered = true
			timeout.Cancel()
			if ok {
				if done != nil {
					done(Result{
						Owner:    target.Addr,
						Attempts: i + 1,
						Latency:  nw.sim.Now() - start,
						OK:       true,
					})
				}
				return
			}
			attempt(i + 1)
		}
		timeout = nw.sim.After(nw.cfg.RPCTimeout, func() { finish(false) })
		nw.net.Send(origin.Addr, target.Addr, nw.cfg.ReqSize, func() {
			peer, ok := nw.byAddr[target.Addr]
			if !ok || !peer.online {
				return
			}
			nw.net.Send(target.Addr, origin.Addr, nw.cfg.RespSize, func() { finish(true) })
		})
	}
	attempt(0)
}

// MaintenanceParams feeds the analytic dissemination-bandwidth model.
type MaintenanceParams struct {
	// N is the network size.
	N int
	// MeanSession and MeanGap define the churn process; each full cycle
	// produces two membership events (join and leave).
	MeanSession, MeanGap time.Duration
	// EventBytes is the wire size of one membership event record
	// (default 20: id + address + type + timestamp).
	EventBytes int
	// Overhead multiplies raw event traffic for headers, acks and
	// keep-alives (default 1.5).
	Overhead float64
	// Slices is the number of ring slices (default sqrt(N)).
	Slices int
	// UnitSize is the number of nodes per unit (default sqrt(N)).
	UnitSize int
}

func (p MaintenanceParams) withDefaults() MaintenanceParams {
	if p.EventBytes <= 0 {
		p.EventBytes = 20
	}
	if p.Overhead <= 0 {
		p.Overhead = 1.5
	}
	root := int(math.Sqrt(float64(p.N)))
	if root < 1 {
		root = 1
	}
	if p.Slices <= 0 {
		p.Slices = root
	}
	if p.UnitSize <= 0 {
		p.UnitSize = root
	}
	return p
}

// EventRate returns network-wide membership events per second: every node
// cycles through one session and one gap, producing two events per cycle.
func (p MaintenanceParams) EventRate() float64 {
	p = p.withDefaults()
	cycle := (p.MeanSession + p.MeanGap).Seconds()
	if cycle <= 0 || p.N <= 0 {
		return 0
	}
	return 2 * float64(p.N) / cycle
}

// OrdinaryBps returns the downstream bandwidth (bits/second) an ordinary
// node spends on membership maintenance: it must receive every event in the
// network exactly once, plus protocol overhead.
func (p MaintenanceParams) OrdinaryBps() float64 {
	p = p.withDefaults()
	return p.EventRate() * float64(p.EventBytes) * 8 * p.Overhead
}

// SliceLeaderBps returns the bandwidth of a slice leader, which aggregates
// its slice's events, exchanges aggregates with the other slice leaders, and
// fans the full event stream out to the unit leaders in its slice.
func (p MaintenanceParams) SliceLeaderBps() float64 {
	p = p.withDefaults()
	r := p.EventRate()
	perSlice := r / float64(p.Slices)
	unitsPerSlice := math.Ceil(float64(p.N) / float64(p.Slices) / float64(p.UnitSize))
	// Receive own slice's events + all other slices' aggregates, then send
	// the full stream to each unit leader in the slice.
	recv := perSlice + (r - perSlice)
	send := perSlice*float64(p.Slices-1) + r*unitsPerSlice
	return (recv + send) * float64(p.EventBytes) * 8 * p.Overhead
}

// UnitLeaderBps returns the bandwidth of a unit leader, which receives the
// full stream from its slice leader and pipes it to its two ring neighbours
// (events then piggyback around the unit on keep-alives).
func (p MaintenanceParams) UnitLeaderBps() float64 {
	p = p.withDefaults()
	r := p.EventRate()
	return r * float64(p.EventBytes) * 8 * p.Overhead * 3 // receive + 2 neighbours
}

// StaleLookupProbability returns the probability that a one-hop lookup hits
// a node that departed within the view lag: the fraction of nodes whose
// state changed in the last ViewLag seconds, scaled by the chance the
// believed owner is affected.
func StaleLookupProbability(p MaintenanceParams, viewLag time.Duration) float64 {
	p = p.withDefaults()
	cycle := (p.MeanSession + p.MeanGap).Seconds()
	if cycle <= 0 {
		return 0
	}
	frac := 2 * viewLag.Seconds() / cycle
	if frac > 1 {
		frac = 1
	}
	return frac
}
