package onehop

import (
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func newOverlay(t *testing.T, n int, seed int64, cfg Config) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw := NewNetwork(s, nm, cfg)
	for i := 0; i < n; i++ {
		nw.AddNode(netmodel.Europe)
	}
	if err := nw.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s, nw
}

func TestBuildValidation(t *testing.T) {
	s := sim.New()
	nw := NewNetwork(s, netmodel.New(s), Config{})
	nw.AddNode(netmodel.Europe)
	if err := nw.Build(); err == nil {
		t.Fatal("Build with one node should error")
	}
}

func TestLookupSingleHopOnStableNetwork(t *testing.T) {
	s, nw := newOverlay(t, 500, 1, Config{})
	bad := 0
	const lookups = 50
	for i := 0; i < lookups; i++ {
		key := s.Stream("k").Uint64()
		origin := nw.Nodes()[s.Stream("o").Intn(500)]
		truth := nw.OwnerOf(key)
		nw.Lookup(origin, key, func(r Result) {
			if !r.OK || r.Attempts != 1 || r.Owner != truth.Addr {
				bad++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bad != 0 {
		t.Fatalf("%d/%d stable-network lookups were not clean one-hop hits", bad, lookups)
	}
}

func TestLookupLatencyIsOneRTT(t *testing.T) {
	s, nw := newOverlay(t, 100, 2, Config{})
	var lat time.Duration
	origin := nw.Nodes()[0]
	key := s.Stream("k").Uint64()
	nw.Lookup(origin, key, func(r Result) { lat = r.Latency })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Intra-EU RTT is ~30ms; one hop must be well under 100ms.
	if lat <= 0 || lat > 100*time.Millisecond {
		t.Fatalf("one-hop latency = %v, want one intra-EU RTT", lat)
	}
}

func TestStaleViewCausesRetry(t *testing.T) {
	s, nw := newOverlay(t, 200, 3, Config{ViewLag: time.Minute, RPCTimeout: time.Second})
	// Kill the true owner of a key; within ViewLag other nodes still
	// believe it online, so the first attempt must time out and retry.
	key := s.Stream("k").Uint64()
	victim := nw.OwnerOf(key)
	nw.SetOnline(victim, false)
	origin := nw.Nodes()[0]
	if origin == victim {
		origin = nw.Nodes()[1]
	}
	var res Result
	s.After(time.Second, func() { // well within ViewLag
		nw.Lookup(origin, key, func(r Result) { res = r })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OK {
		t.Fatal("retry through successor list should eventually succeed")
	}
	if res.Attempts < 2 {
		t.Fatalf("Attempts = %d, want >= 2 when owner departed within view lag", res.Attempts)
	}
	if res.Latency < time.Second {
		t.Fatalf("latency %v should include at least one RPC timeout", res.Latency)
	}
}

func TestViewConvergesAfterLag(t *testing.T) {
	s, nw := newOverlay(t, 200, 4, Config{ViewLag: 30 * time.Second, RPCTimeout: time.Second})
	key := s.Stream("k").Uint64()
	victim := nw.OwnerOf(key)
	nw.SetOnline(victim, false)
	origin := nw.Nodes()[0]
	if origin == victim {
		origin = nw.Nodes()[1]
	}
	var res Result
	s.After(2*time.Minute, func() { // view has converged
		nw.Lookup(origin, key, func(r Result) { res = r })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OK || res.Attempts != 1 {
		t.Fatalf("after view convergence lookup should be clean one-hop, got attempts=%d ok=%v", res.Attempts, res.OK)
	}
}

func TestLookupFromOfflineOrigin(t *testing.T) {
	s, nw := newOverlay(t, 50, 5, Config{})
	n := nw.Nodes()[0]
	nw.SetOnline(n, false)
	var res *Result
	nw.Lookup(n, 99, func(r Result) { res = &r })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.OK {
		t.Fatal("offline origin must fail immediately")
	}
}

func TestMaintenanceModel(t *testing.T) {
	p := MaintenanceParams{
		N:           100_000,
		MeanSession: time.Hour,
		MeanGap:     time.Hour,
	}
	// 2*1e5 events per 2h = ~27.8 events/s.
	rate := p.EventRate()
	if rate < 27 || rate < 0 || rate > 29 {
		t.Fatalf("EventRate = %v, want ~27.8", rate)
	}
	ord := p.OrdinaryBps()
	// 27.8 ev/s * 20 B * 8 * 1.5 = ~6.7 kbps: feasible on any broadband
	// link — the Gupta et al. conclusion.
	if ord < 5_000 || ord > 9_000 {
		t.Fatalf("OrdinaryBps = %v, want ~6.7kbps", ord)
	}
	if p.SliceLeaderBps() <= p.UnitLeaderBps() || p.UnitLeaderBps() <= ord {
		t.Fatal("hierarchy bandwidth must increase with responsibility")
	}
}

func TestMaintenanceScalesLinearly(t *testing.T) {
	small := MaintenanceParams{N: 10_000, MeanSession: time.Hour, MeanGap: time.Hour}
	big := MaintenanceParams{N: 100_000, MeanSession: time.Hour, MeanGap: time.Hour}
	ratio := big.OrdinaryBps() / small.OrdinaryBps()
	if ratio < 9.9 || ratio > 10.1 {
		t.Fatalf("ordinary bandwidth should scale linearly with n, ratio = %v", ratio)
	}
}

func TestStaleLookupProbability(t *testing.T) {
	p := MaintenanceParams{N: 1000, MeanSession: time.Hour, MeanGap: time.Hour}
	pr := StaleLookupProbability(p, 30*time.Second)
	// 2*30s / 7200s = ~0.83%.
	if pr < 0.005 || pr > 0.012 {
		t.Fatalf("StaleLookupProbability = %v, want ~0.0083", pr)
	}
	if got := StaleLookupProbability(p, 2*time.Hour); got > 1 {
		t.Fatalf("probability must be capped at 1, got %v", got)
	}
}

func TestZeroChurnModel(t *testing.T) {
	p := MaintenanceParams{N: 1000}
	if p.EventRate() != 0 || p.OrdinaryBps() != 0 {
		t.Fatal("zero churn must imply zero maintenance")
	}
}
