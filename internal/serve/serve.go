// Package serve is the living-report service: an HTTP API that executes
// report scenarios on demand through the harness worker pool and serves
// the resulting artifact trees from an in-memory, scenario-hash-keyed
// cache. Identical scenarios collapse onto one generation (singleflight)
// and later requests stream the cached bytes, so the served artifacts
// are byte-identical to the offline `decentsim report` tree for the same
// scenario — the determinism contract makes the cache sound. The service
// reports its own behaviour through the same obs telemetry layer as the
// simulations: cache hit / miss / inflight-wait counters plus a sweep
// counter, readable via Server.Stats.
//
// This package deliberately sits outside the decentlint nondeterm scope:
// it owns wall-clock concerns (HTTP, request contexts, cancellation)
// while everything it serves stays deterministic.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/report"
)

// DefaultMaxCached bounds how many completed scenario trees the cache
// retains before least-recently-used eviction. In-flight generations are
// never evicted.
const DefaultMaxCached = 16

// Server executes report scenarios on demand and caches their trees by
// scenario hash. The zero value is not usable; construct with New.
type Server struct {
	reg *core.Registry
	// base is the default scenario served by /report and /experiments.
	base report.Options
	// maxCached bounds retained completed trees (LRU beyond it).
	maxCached int
	// col receives the service's cache lanes. The obs collector is
	// single-owner by contract, so every touch happens under mu with the
	// server as the owner.
	col *obs.Collector

	mu    sync.Mutex
	cache map[string]*entry
	seq   int64
}

// entry is one cached (or in-flight) scenario generation.
type entry struct {
	ready   chan struct{} // closed when tree/err are set
	tree    *report.Tree
	err     error
	waiters int                // requests currently waiting on ready
	cancel  context.CancelFunc // stops generation when all waiters leave
	lastUse int64              // server sequence number for LRU eviction
}

// New builds a Server over the registry. base is the default scenario
// for /report and /experiments/{id}; its HTML rendering is forced on
// (the service's reason to exist) and its id/seed/scale defaults are
// resolved so the default scenario hashes identically to an explicit
// /run request naming the same values. col may be nil (no telemetry).
func New(reg *core.Registry, base report.Options, col *obs.Collector) *Server {
	base.HTML = true
	return &Server{
		reg:       reg,
		base:      normalize(reg, base),
		maxCached: DefaultMaxCached,
		col:       col,
		cache:     make(map[string]*entry),
	}
}

// normalize resolves the option defaults that report.Generate would
// apply, so equal scenarios spell identically in the cache key.
func normalize(reg *core.Registry, opts report.Options) report.Options {
	if len(opts.IDs) == 0 {
		for _, e := range reg.All() {
			opts.IDs = append(opts.IDs, e.ID())
		}
	}
	for i, id := range opts.IDs {
		opts.IDs[i] = strings.ToUpper(id)
	}
	if len(opts.Seeds) == 0 {
		opts.Seeds = []int64{1, 2, 3}
	}
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	return opts
}

// Key returns the scenario's cache key: the SHA-256 of its canonical
// descriptor (ordered experiment scenario keys — the same identities the
// manifest's claims carry — plus seeds and layer toggles).
func Key(opts report.Options) string {
	var b strings.Builder
	for i, id := range opts.IDs {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(harness.ScenarioKey(id, opts.Scale, opts.Params))
	}
	b.WriteString("|seeds=")
	for i, s := range opts.Seeds {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(strconv.FormatInt(s, 10))
	}
	fmt.Fprintf(&b, "|sens=%t|grid=%d|res=%t|html=%t",
		opts.Sensitivity, opts.GridPoints, opts.Resources, opts.HTML)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Stats is a point-in-time read of the service's cache lanes.
type Stats struct {
	Hits          uint64 `json:"cache_hits"`
	Misses        uint64 `json:"cache_misses"`
	InflightWaits uint64 `json:"cache_inflight_waits"`
	Sweeps        uint64 `json:"sweeps"`
}

// Stats reads the obs cache lanes. Zero when the server has no collector.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:          s.col.Counter("serve.cache_hit").Total(),
		Misses:        s.col.Counter("serve.cache_miss").Total(),
		InflightWaits: s.col.Counter("serve.cache_inflight_wait").Total(),
		Sweeps:        s.col.Counter("serve.sweeps").Total(),
	}
}

// count bumps a service lane. Callers must hold s.mu: obs collectors are
// single-owner and the mutex is what makes the server that owner.
func (s *Server) count(name string) {
	s.col.Counter(name).Add(0, -1, 1)
}

// Tree returns the generated tree for the scenario, its cache key, and
// the cache lane the request took: "hit" (already generated), "miss"
// (this request triggered generation), or "wait" (joined a generation
// already in flight). Errors are never cached; a failed generation's
// waiters all receive the error and the next request retries. When ctx
// ends and a generation has no remaining waiters it is cancelled.
func (s *Server) Tree(ctx context.Context, opts report.Options) (*report.Tree, string, string, error) {
	opts = normalize(s.reg, opts)
	key := Key(opts)

	s.mu.Lock()
	s.seq++
	if e, ok := s.cache[key]; ok {
		e.lastUse = s.seq
		select {
		case <-e.ready:
			// Completed entries always hold a tree: errors are deleted
			// from the cache before ready is observed here.
			s.count("serve.cache_hit")
			s.mu.Unlock()
			return e.tree, key, "hit", nil
		default:
			e.waiters++
			s.count("serve.cache_inflight_wait")
			s.mu.Unlock()
			return s.wait(ctx, e, key, "wait")
		}
	}
	genCtx, cancel := context.WithCancel(context.Background())
	e := &entry{ready: make(chan struct{}), cancel: cancel, waiters: 1, lastUse: s.seq}
	s.cache[key] = e
	s.count("serve.cache_miss")
	s.count("serve.sweeps")
	s.mu.Unlock()

	go func() {
		tree, err := report.GenerateContext(genCtx, s.reg, opts)
		s.mu.Lock()
		e.tree, e.err = tree, err
		if err != nil && s.cache[key] == e {
			delete(s.cache, key)
		}
		close(e.ready)
		if err == nil {
			s.evictLocked()
		}
		s.mu.Unlock()
	}()
	return s.wait(ctx, e, key, "miss")
}

// wait blocks until the entry completes or ctx ends. The caller must
// already be counted in e.waiters. The last waiter to abandon an
// unfinished generation cancels it and removes the entry.
func (s *Server) wait(ctx context.Context, e *entry, key, lane string) (*report.Tree, string, string, error) {
	select {
	case <-e.ready:
	case <-ctx.Done():
		s.mu.Lock()
		e.waiters--
		abandoned := false
		select {
		case <-e.ready:
		default:
			if e.waiters == 0 {
				abandoned = true
				if s.cache[key] == e {
					delete(s.cache, key)
				}
			}
		}
		s.mu.Unlock()
		if abandoned {
			e.cancel()
		}
		return nil, key, lane, fmt.Errorf("serve: request abandoned: %w", ctx.Err())
	}
	s.mu.Lock()
	e.waiters--
	s.mu.Unlock()
	if e.err != nil {
		return nil, key, lane, e.err
	}
	return e.tree, key, lane, nil
}

// evictLocked drops least-recently-used completed idle entries beyond
// maxCached. Caller holds s.mu.
func (s *Server) evictLocked() {
	for {
		done := 0
		victim := ""
		var victimUse int64
		for k, e := range s.cache {
			select {
			case <-e.ready:
			default:
				continue
			}
			done++
			if e.waiters == 0 && (victim == "" || e.lastUse < victimUse) {
				victim, victimUse = k, e.lastUse
			}
		}
		if done <= s.maxCached || victim == "" {
			return
		}
		delete(s.cache, victim)
	}
}

// Handler returns the service's HTTP API:
//
//	GET /healthz             liveness probe
//	GET /report              the default scenario's index.html
//	GET /report/{path...}    any artifact of the default scenario's tree
//	GET /experiments/{id}    the default scenario's per-experiment page
//	GET /run?scenario=...    execute (or hit the cache for) a scenario
//	GET /statz               the cache lanes as JSON
//
// /run takes scenario=E01,E11 (experiment ids; empty means the full
// registry), seeds=1..5 or seeds=1,2,9, scale=0.25, knob.<name>=<value>
// pins, sensitivity=true, resources=true, and artifact=<path> selecting
// which artifact of the tree to return (default manifest.json). Unknown
// query keys, malformed values, and unknown experiment ids are a 400.
// Every scenario response carries X-Decentsim-Cache: hit|miss|wait and
// X-Decentsim-Key: <scenario sha256>.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"cache_hits\":%d,\"cache_misses\":%d,\"cache_inflight_waits\":%d,\"sweeps\":%d}\n",
			st.Hits, st.Misses, st.InflightWaits, st.Sweeps)
	})
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		s.serveScenario(w, r, s.base, "index.html")
	})
	mux.HandleFunc("GET /report/{path...}", func(w http.ResponseWriter, r *http.Request) {
		path := r.PathValue("path")
		if path == "" {
			path = "index.html"
		}
		s.serveScenario(w, r, s.base, path)
	})
	mux.HandleFunc("GET /experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := strings.ToUpper(r.PathValue("id"))
		s.serveScenario(w, r, s.base, "experiments/"+id+".html")
	})
	mux.HandleFunc("GET /run", func(w http.ResponseWriter, r *http.Request) {
		opts, artifact, err := s.parseScenario(r.URL.Query())
		if err != nil {
			http.Error(w, fmt.Sprintf("bad scenario: %v", err), http.StatusBadRequest)
			return
		}
		s.serveScenario(w, r, opts, artifact)
	})
	return mux
}

// serveScenario resolves the scenario through the cache and streams one
// artifact of its tree.
func (s *Server) serveScenario(w http.ResponseWriter, r *http.Request, opts report.Options, artifact string) {
	tree, key, lane, err := s.Tree(r.Context(), opts)
	w.Header().Set("X-Decentsim-Cache", lane)
	w.Header().Set("X-Decentsim-Key", key)
	if err != nil {
		http.Error(w, fmt.Sprintf("scenario generation failed: %v", err), http.StatusInternalServerError)
		return
	}
	rd, ok := tree.Open(artifact)
	if !ok {
		http.Error(w, fmt.Sprintf("no artifact %q in scenario tree", artifact), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", contentType(artifact))
	io.Copy(w, rd)
}

// contentType maps artifact extensions to media types; report trees hold
// a small closed set.
func contentType(path string) string {
	switch {
	case strings.HasSuffix(path, ".html"):
		return "text/html; charset=utf-8"
	case strings.HasSuffix(path, ".json"):
		return "application/json"
	case strings.HasSuffix(path, ".svg"):
		return "image/svg+xml"
	case strings.HasSuffix(path, ".md"):
		return "text/markdown; charset=utf-8"
	case strings.HasSuffix(path, ".csv"):
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// parseScenario builds report options from /run query parameters,
// rejecting unknown keys and malformed or unknown values so typos fail
// loudly (400) instead of silently running the default scenario.
func (s *Server) parseScenario(q map[string][]string) (report.Options, string, error) {
	opts := report.Options{
		HTML:    true,
		Workers: s.base.Workers,
		Shards:  s.base.Shards,
	}
	artifact := "manifest.json"
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := q[k][len(q[k])-1]
		switch {
		case k == "scenario":
			if v != "" {
				opts.IDs = strings.Split(v, ",")
			}
		case k == "seeds":
			seeds, err := parseSeeds(v)
			if err != nil {
				return opts, "", err
			}
			opts.Seeds = seeds
		case k == "scale":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || !(f > 0) {
				return opts, "", fmt.Errorf("scale %q must be a positive number", v)
			}
			opts.Scale = f
		case k == "sensitivity", k == "resources":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return opts, "", fmt.Errorf("%s %q must be a boolean", k, v)
			}
			if k == "sensitivity" {
				opts.Sensitivity = b
			} else {
				opts.Resources = b
			}
		case k == "artifact":
			artifact = v
		case strings.HasPrefix(k, "knob."):
			name := k[len("knob."):]
			if _, ok := experiments.KnobSpecs()[name]; !ok {
				return opts, "", fmt.Errorf("unknown knob %q", name)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return opts, "", fmt.Errorf("knob %s value %q must be a number", name, v)
			}
			if opts.Params == nil {
				opts.Params = map[string]float64{}
			}
			opts.Params[name] = f
		default:
			return opts, "", fmt.Errorf("unknown query key %q", k)
		}
	}
	for _, id := range opts.IDs {
		if _, err := s.reg.Get(id); err != nil {
			return opts, "", fmt.Errorf("unknown experiment id %q", id)
		}
	}
	return opts, artifact, nil
}

// parseSeeds parses "1..5", "1,2,9", or a mix ("1..3,7"); every seed
// must be >= 1 (the harness rejects seed 0 — it would silently rerun
// seed 1).
func parseSeeds(spec string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(spec, ",") {
		if lo, hi, ok := strings.Cut(part, ".."); ok {
			a, errA := strconv.ParseInt(lo, 10, 64)
			b, errB := strconv.ParseInt(hi, 10, 64)
			if errA != nil || errB != nil || a < 1 || b < a {
				return nil, fmt.Errorf("seed range %q must be lo..hi with 1 <= lo <= hi", part)
			}
			if b-a >= 10000 {
				return nil, fmt.Errorf("seed range %q too large (max 10000 seeds)", part)
			}
			for v := a; v <= b; v++ {
				seeds = append(seeds, v)
			}
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("seed %q must be an integer >= 1", part)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("empty seed list")
	}
	return seeds, nil
}
