package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
)

// testScenario keeps handler tests fast: one small experiment, one seed,
// quarter scale.
var testScenario = report.Options{IDs: []string{"E01"}, Seeds: []int64{1}, Scale: 0.25}

func testServer(t *testing.T) *Server {
	t.Helper()
	reg, err := experiments.Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	return New(reg, testScenario, obs.NewCollector())
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestReportCacheMissThenHit pins the cache contract: the first /report
// request generates (miss), the second is served from the cache (hit)
// with byte-identical content, and the obs lanes record both.
func TestReportCacheMissThenHit(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	first := get(t, h, "/report")
	if first.Code != http.StatusOK {
		t.Fatalf("first /report: %d %s", first.Code, first.Body.String())
	}
	if lane := first.Header().Get("X-Decentsim-Cache"); lane != "miss" {
		t.Errorf("first request lane = %q, want miss", lane)
	}
	second := get(t, h, "/report")
	if second.Code != http.StatusOK {
		t.Fatalf("second /report: %d", second.Code)
	}
	if lane := second.Header().Get("X-Decentsim-Cache"); lane != "hit" {
		t.Errorf("second request lane = %q, want hit", lane)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("cached response differs from generated response")
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Sweeps != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 sweep", st)
	}
}

// TestServedBytesMatchOffline pins the byte-identity acceptance
// criterion: what the service streams equals the offline report tree for
// the same scenario.
func TestServedBytesMatchOffline(t *testing.T) {
	reg, err := experiments.Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	opts := testScenario
	opts.HTML = true
	offline, err := report.Generate(reg, opts)
	if err != nil {
		t.Fatalf("offline Generate: %v", err)
	}
	h := testServer(t).Handler()
	if err := offline.Walk(func(f report.File) error {
		rec := get(t, h, "/report/"+f.Path)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("/report/%s: %d", f.Path, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), f.Data) {
			return fmt.Errorf("/report/%s differs from offline tree", f.Path)
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
}

// TestRoutes covers the route surface: index aliases, per-experiment
// pages, content types, unknown artifacts.
func TestRoutes(t *testing.T) {
	h := testServer(t).Handler()

	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Errorf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
	index := get(t, h, "/report")
	if ct := index.Header().Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("/report content type = %q", ct)
	}
	alias := get(t, h, "/report/index.html")
	if !bytes.Equal(alias.Body.Bytes(), index.Body.Bytes()) {
		t.Errorf("/report and /report/index.html disagree")
	}
	man := get(t, h, "/report/manifest.json")
	if man.Code != http.StatusOK || man.Header().Get("Content-Type") != "application/json" {
		t.Errorf("/report/manifest.json = %d %q", man.Code, man.Header().Get("Content-Type"))
	}
	page := get(t, h, "/experiments/e01")
	if page.Code != http.StatusOK || !bytes.Contains(page.Body.Bytes(), []byte("<html")) {
		t.Errorf("/experiments/e01 = %d", page.Code)
	}
	if rec := get(t, h, "/report/no-such-file"); rec.Code != http.StatusNotFound {
		t.Errorf("/report/no-such-file = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/experiments/E99"); rec.Code >= 200 && rec.Code < 300 {
		t.Errorf("/experiments/E99 = %d, want failure", rec.Code)
	}
	if rec := get(t, h, "/statz"); rec.Code != http.StatusOK ||
		!bytes.Contains(rec.Body.Bytes(), []byte("cache_hits")) {
		t.Errorf("/statz = %d %q", rec.Code, rec.Body.String())
	}
}

// TestRunSingleflight pins the collapse contract: concurrent identical
// /run requests share one generation — exactly one sweep runs, every
// response carries identical bytes, and the lane headers partition into
// one miss plus waits/hits.
func TestRunSingleflight(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	const n = 8
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/run?scenario=E01&seeds=1&scale=0.25", nil))
			recs[i] = rec
		}(i)
	}
	wg.Wait()

	lanes := map[string]int{}
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body.String())
		}
		lanes[rec.Header().Get("X-Decentsim-Cache")]++
		if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Errorf("request %d bytes differ", i)
		}
	}
	if lanes["miss"] != 1 {
		t.Errorf("lanes = %v, want exactly one miss", lanes)
	}
	if lanes["miss"]+lanes["wait"]+lanes["hit"] != n {
		t.Errorf("lanes = %v, want %d total", lanes, n)
	}
	if st := s.Stats(); st.Sweeps != 1 {
		t.Errorf("stats = %+v, want exactly one sweep for %d identical requests", st, n)
	}
}

// TestRunScenarioIdentity checks /run keying: the same scenario spelled
// through /run hits the cache entry the default /report scenario filled,
// and a different scenario misses.
func TestRunScenarioIdentity(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	get(t, h, "/report")
	same := get(t, h, "/run?scenario=E01&seeds=1&scale=0.25&artifact=index.html")
	if lane := same.Header().Get("X-Decentsim-Cache"); lane != "hit" {
		t.Errorf("identical scenario via /run lane = %q, want hit", lane)
	}
	other := get(t, h, "/run?scenario=E01&seeds=2&scale=0.25")
	if lane := other.Header().Get("X-Decentsim-Cache"); lane != "miss" {
		t.Errorf("different seed set lane = %q, want miss", lane)
	}
	if other.Header().Get("X-Decentsim-Key") == same.Header().Get("X-Decentsim-Key") {
		t.Errorf("different scenarios share a cache key")
	}
}

// TestRunMalformedScenario pins the 400 contract for every malformed
// scenario class.
func TestRunMalformedScenario(t *testing.T) {
	h := testServer(t).Handler()
	cases := []struct{ name, query string }{
		{"unknown key", "/run?frobnicate=1"},
		{"unknown experiment", "/run?scenario=E99"},
		{"zero seed", "/run?scenario=E01&seeds=0"},
		{"bad seed", "/run?scenario=E01&seeds=x"},
		{"inverted range", "/run?scenario=E01&seeds=5..2"},
		{"huge range", "/run?scenario=E01&seeds=1..99999"},
		{"bad scale", "/run?scenario=E01&scale=banana"},
		{"negative scale", "/run?scenario=E01&scale=-1"},
		{"unknown knob", "/run?scenario=E01&knob.nope=1"},
		{"bad knob value", "/run?scenario=E01&knob.e01.exploration=x"},
		{"bad bool", "/run?scenario=E01&sensitivity=maybe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, h, tc.query)
			if rec.Code != http.StatusBadRequest {
				t.Errorf("%s = %d %q, want 400", tc.query, rec.Code, rec.Body.String())
			}
		})
	}
}

// TestKeyCanonical pins that key computation is insensitive to id case
// and spelling order of defaults.
func TestKeyCanonical(t *testing.T) {
	reg, err := experiments.Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	a := Key(normalize(reg, report.Options{IDs: []string{"e01"}, Seeds: []int64{1}, Scale: 0.25, HTML: true}))
	b := Key(normalize(reg, report.Options{IDs: []string{"E01"}, Seeds: []int64{1}, Scale: 0.25, HTML: true}))
	if a != b {
		t.Errorf("case-insensitive ids should share a key")
	}
	c := Key(normalize(reg, report.Options{IDs: []string{"E01"}, Seeds: []int64{2}, Scale: 0.25, HTML: true}))
	if a == c {
		t.Errorf("different seeds should change the key")
	}
}

// TestEviction checks completed idle entries beyond the cap are dropped
// LRU-first while in-flight entries survive.
func TestEviction(t *testing.T) {
	s := testServer(t)
	s.maxCached = 1
	mk := func(n int) *entry {
		e := &entry{ready: make(chan struct{}), lastUse: int64(n)}
		close(e.ready)
		return e
	}
	s.mu.Lock()
	s.cache["a"] = mk(1)
	s.cache["b"] = mk(2)
	inflight := &entry{ready: make(chan struct{}), lastUse: 0}
	s.cache["c"] = inflight
	s.evictLocked()
	_, hasA := s.cache["a"]
	_, hasB := s.cache["b"]
	_, hasC := s.cache["c"]
	s.mu.Unlock()
	if hasA || !hasB || !hasC {
		t.Errorf("eviction kept a=%t b=%t c=%t, want only b (newest done) and c (in flight)", hasA, hasB, hasC)
	}
}
